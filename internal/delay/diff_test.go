package delay

import (
	"fmt"
	"testing"

	"repro/internal/conflict"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/progen"
	"repro/internal/sem"
	"repro/internal/source"
)

// genFn builds the progen program for a seed, or nil when the seed does
// not produce a buildable program.
func genFn(seed int64) *ir.Fn {
	opts := progen.Options{
		Procs: 4, MaxPhases: 3, MaxStmts: 6, MaxDepth: 2,
		Arrays: 3, Scalars: 3, Events: 2, Locks: 2,
	}
	prog, err := source.Parse(progen.Generate(seed, opts))
	if err != nil {
		return nil
	}
	info, err := sem.Check(prog)
	if err != nil {
		return nil
	}
	fn, err := ir.Build(info, ir.BuildOptions{Procs: 4})
	if err != nil {
		return nil
	}
	return fn
}

// diffVariants returns the constraint variants the differential tests
// exercise, spanning every engine mode: plain, oriented (ConflictDir and
// its DirRows bit-matrix form), pair-filtered, endpoint-restricted in both
// modes (the sparse include list drives the reverse-sweep flip), per-pair
// (Removed, with and without a RemovedCover screen), combinations, and the
// exact search. Hooks are synthetic but deterministic.
func diffVariants(fn *ir.Fn, cs *conflict.Set) []struct {
	name string
	con  Constraints
} {
	n := len(fn.Accesses)
	isSync := func(a, b int) bool {
		return fn.Accesses[a].Kind.IsSync() || fn.Accesses[b].Kind.IsSync()
	}
	cdir := func(x, y int) bool { return (x+y)%3 != 0 || x <= y }
	rem := func(a, b, z int) bool { return (a+2*b+3*z)%5 == 0 }
	cover := func(a, b int, scratch []uint64) []uint64 {
		for i := range scratch {
			scratch[i] = 0
		}
		for z := 0; z < n; z++ {
			if rem(a, b, z) {
				graph.BitSet(scratch, z)
			}
		}
		return scratch
	}
	var sparse []int
	for i := 0; i < n; i += 7 {
		sparse = append(sparse, i)
	}
	dirRows := graph.NewBitMatrix(n)
	for x := 0; x < n; x++ {
		for _, y := range cs.Partners(x) {
			if cdir(x, y) {
				dirRows.Set(x, y)
			}
		}
	}
	return []struct {
		name string
		con  Constraints
	}{
		{"plain", Constraints{}},
		{"dir", Constraints{ConflictDir: cdir}},
		{"dirrows", Constraints{DirRows: dirRows}},
		{"filter", Constraints{PairFilter: isSync}},
		{"endpoints-inc", Constraints{Endpoints: sparse}},
		{"endpoints-exc", Constraints{Endpoints: sparse, EndpointsMode: EndpointsExclude}},
		{"endpoints-inc+dir", Constraints{Endpoints: sparse, ConflictDir: cdir}},
		{"removed", Constraints{Removed: rem}},
		{"removed+cover", Constraints{Removed: rem, RemovedCover: cover}},
		{"dir+removed+filter", Constraints{ConflictDir: cdir, Removed: rem, PairFilter: isSync}},
		{"dirrows+removed+cover+inc", Constraints{DirRows: dirRows, Removed: rem, RemovedCover: cover, Endpoints: sparse}},
		{"exact", Constraints{Exact: true, MaxExactNodes: 1 << 20}},
	}
}

func pairsEqual(t *testing.T, label string, got, want *Set) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: got %d pairs, reference has %d\ngot:\n%swant:\n%s",
			label, got.Size(), want.Size(), got, want)
	}
	for _, p := range want.Pairs() {
		if !got.Has(p.A, p.B) {
			t.Fatalf("%s: reference pair [%d,%d] missing from batched engine", label, p.A, p.B)
		}
	}
}

// TestBatchedMatchesReference proves the regionized engine (the default)
// and the whole-graph batched engine both compute delay sets
// pair-identical to the per-pair reference search, across progen seeds and
// every constraint variant.
func TestBatchedMatchesReference(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 80; seed++ {
		fn := genFn(seed)
		if fn == nil || len(fn.Accesses) == 0 {
			continue
		}
		ag := ir.BuildAccessGraph(fn)
		cs := conflict.Compute(fn)
		for _, v := range diffVariants(fn, cs) {
			if v.con.Exact && len(fn.Accesses) > 18 {
				continue // the simple-path search is exponential on dense
				// progen conflict graphs; keep it affordable
			}
			label := fmt.Sprintf("seed %d %s (n=%d)", seed, v.name, len(fn.Accesses))
			got := Compute(ag, cs, v.con)
			ref := v.con
			ref.Reference = true
			want := Compute(ag, cs, ref)
			pairsEqual(t, label, got, want)
			whole := v.con
			whole.Engine = EngineWhole
			pairsEqual(t, label+" [whole]", Compute(ag, cs, whole), want)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d buildable seeds, want >= 50", checked)
	}
}

// TestComputeDeterministicAcrossWorkers locks down that the worker count
// never changes the computed set: results land in index-addressed slots
// and merge in pair order.
func TestComputeDeterministicAcrossWorkers(t *testing.T) {
	defer func(w int) { Workers = w }(Workers)
	fn := genFn(3)
	for seed := int64(3); fn == nil; seed++ {
		fn = genFn(seed)
	}
	ag := ir.BuildAccessGraph(fn)
	cs := conflict.Compute(fn)
	for _, v := range diffVariants(fn, cs) {
		Workers = 1
		seq := Compute(ag, cs, v.con)
		for _, nw := range []int{2, 8} {
			Workers = nw
			par := Compute(ag, cs, v.con)
			pairsEqual(t, fmt.Sprintf("%s workers=%d", v.name, nw), par, seq)
			if fmt.Sprint(par.Pairs()) != fmt.Sprint(seq.Pairs()) {
				t.Fatalf("%s: pair ordering differs at %d workers", v.name, nw)
			}
		}
	}
}
