package delay

import (
	"fmt"
	"testing"

	"repro/internal/conflict"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/progen"
	"repro/internal/sem"
	"repro/internal/source"
)

// denseFn seed-scans for a progen program with at least 512 accesses: the
// size gate for the word-parallel restricted search (denseRestrict needs
// n >= 512) and comfortably past the dense-region dispatch (nl >= 256 with
// one word of edges per node). The small-seed differential suite never
// crosses these thresholds, so the dense code paths would otherwise ship
// untested — which is exactly how a seed-expansion bug once slipped
// through to the 2k-access tier.
func denseFn(tb testing.TB) *ir.Fn {
	tb.Helper()
	opts := progen.Options{
		Procs: 4, MaxPhases: 16, MaxStmts: 64, MaxDepth: 2,
		Arrays: 4, Scalars: 4, Events: 3, Locks: 2,
	}
	for seed := int64(0); seed < 200; seed++ {
		prog, err := source.Parse(progen.Generate(seed, opts))
		if err != nil {
			continue
		}
		info, err := sem.Check(prog)
		if err != nil {
			continue
		}
		fn, err := ir.Build(info, ir.BuildOptions{Procs: 4})
		if err != nil {
			continue
		}
		if n := len(fn.Accesses); n >= 512 && n <= 1024 {
			return fn
		}
	}
	tb.Fatal("no progen seed lands in [512, 1024] accesses")
	return nil
}

// denseVariants are the directed-engine constraint variants whose code
// paths only activate on large inputs. The removal predicate is shaped
// like the production lock guards — rem(a,b,z) holds iff a, b, and z
// share a mask bit — so the cover is exactly the removed set and the
// per-node masks are expressible through NodeSig.
func denseVariants(fn *ir.Fn, cs *conflict.Set) []struct {
	name string
	con  Constraints
} {
	n := len(fn.Accesses)
	m := make([]uint64, n)
	for x := 0; x < n; x++ {
		m[x] = 1 << uint(x%5)
	}
	rem := func(a, b, z int) bool { return m[a]&m[b]&m[z] != 0 }
	cover := func(a, b int, scratch []uint64) []uint64 {
		for i := range scratch {
			scratch[i] = 0
		}
		ab := m[a] & m[b]
		for z := 0; z < n; z++ {
			if m[z]&ab != 0 {
				graph.BitSet(scratch, z)
			}
		}
		return scratch
	}
	nodeSig := func(x int, mask []uint64, lof []int32, s *Sig) {
		s.Word(m[x])
	}
	cdir := func(x, y int) bool { return (x+y)%3 != 0 || x <= y }
	dirRows := graph.NewBitMatrix(n)
	for x := 0; x < n; x++ {
		for _, y := range cs.Partners(x) {
			if cdir(x, y) {
				dirRows.Set(x, y)
			}
		}
	}
	return []struct {
		name string
		con  Constraints
	}{
		{"dirrows", Constraints{DirRows: dirRows}},
		{"dirrows+removed+cover", Constraints{
			DirRows: dirRows, Removed: rem, RemovedCover: cover}},
		{"dirrows+removed+exact", Constraints{
			DirRows: dirRows, Removed: rem, RemovedCover: cover,
			RemovedExact: true, NodeSig: nodeSig}},
	}
}

// TestDenseRegionMatchesWhole is the large-input differential: the
// regionized engine with its dense-region dispatch and word-parallel
// restricted pair search must stay pair-identical to the whole-graph
// batched engine past the n >= 512 activation thresholds.
func TestDenseRegionMatchesWhole(t *testing.T) {
	fn := denseFn(t)
	ag := ir.BuildAccessGraph(fn)
	cs := conflict.Compute(fn)
	for _, v := range denseVariants(fn, cs) {
		got := Compute(ag, cs, v.con)
		whole := v.con
		whole.Engine = EngineWhole
		want := Compute(ag, cs, whole)
		pairsEqual(t, fmt.Sprintf("dense %s (n=%d)", v.name, len(fn.Accesses)), got, want)
	}
}

// TestRegionCacheColdWarm proves the region memo cache is invisible to
// results: a cold run populating the cache and a warm run replaying it
// produce pair-identical sets, the warm run actually hits, and both match
// the whole-graph oracle.
func TestRegionCacheColdWarm(t *testing.T) {
	fn := denseFn(t)
	ag := ir.BuildAccessGraph(fn)
	cs := conflict.Compute(fn)
	for _, v := range denseVariants(fn, cs) {
		cache := NewRegionCache(0)
		con := v.con
		con.Cache = cache
		cold := Compute(ag, cs, con)
		misses := cache.Misses
		usable := cacheUsable(con)
		if usable && misses == 0 {
			t.Fatalf("%s: cold run recorded no cache misses; memoization never engaged", v.name)
		}
		warm := Compute(ag, cs, con)
		if usable && cache.Hits < misses {
			t.Fatalf("%s: warm run hit %d of %d memoized regions", v.name, cache.Hits, misses)
		}
		if !usable && cache.Hits+cache.Misses > 0 {
			t.Fatalf("%s: unfingerprintable constraints still touched the cache", v.name)
		}
		pairsEqual(t, v.name+" warm-vs-cold", warm, cold)
		whole := v.con
		whole.Engine = EngineWhole
		pairsEqual(t, v.name+" cold-vs-whole", cold, Compute(ag, cs, whole))
	}
}
