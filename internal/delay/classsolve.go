package delay

import (
	"math/bits"

	"repro/internal/graph"
	"repro/internal/ir"
)

// classSolve is denseSolve restructured around Constraints.AccessClass:
// accesses of one class share dirOut/dirIn rows (restricted to the region)
// and removal behaviour, so the per-target cut BFS that denseSolve runs nl
// times collapses to one uncut BFS per distinct SEED ROW — target classes
// are ordered so classes sharing a seed row are adjacent — and most
// per-pair avoid-searches collapse to O(1) interval queries against that
// shared first-visit tree.
//
// The certificate machinery: one uncut BFS per seed row yields a
// first-visit tree whose preorder intervals are nested or disjoint, so
// "how many witnesses of T(a) lie under subtree(la) ∪ subtree(lb)" is two
// rank queries on a bitset of witness entry times. A witness outside both
// subtrees has a tree path avoiding la and lb entirely — an exact TRUE
// for the pair — and zero reachable witnesses on the UNcut tree is an
// exact FALSE (uncut reach only over-approximates the reference's cut
// reach). Pairs the shared tree cannot certify fall to a per-a-class
// blocked BFS (TRUE-only: blocking the whole class under-approximates
// blocking one member) and finally to DenseFlow.AvoidReach, the same
// exact per-pair search denseSolve uses. The Removed stage repeats the
// pattern on a cover-restricted tree — rebuilt only when the cover or the
// seed row actually changes — with denseRestrict/densePairSearch as the
// exact residue.
//
// Returns false — having written nothing — when the region's seed-row
// diversity makes sharing pointless or the constraint shape is
// unsupported; the caller then runs denseSolve.
func classSolve(ag *ir.AccessGraph, con Constraints, out *Set,
	members []int32, mask []uint64, lof []int32,
	dirOut, dirIn graph.Rows, em []uint64,
	gd *mixedAdj, sc *regionScratch) bool {

	nl := len(members)
	lw := graph.WordsFor(nl)

	// Local class ids, in first-seen member order.
	lcOf := make([]int32, nl)
	gid2l := make(map[int32]int32, 64)
	ncl := 0
	for li, gv := range members {
		g := con.AccessClass[gv]
		l, ok := gid2l[g]
		if !ok {
			l = int32(ncl)
			ncl++
			gid2l[g] = l
		}
		lcOf[li] = l
	}
	byClass := make([][]int32, ncl)
	for lb := 0; lb < nl; lb++ {
		byClass[lcOf[lb]] = append(byClass[lcOf[lb]], int32(lb))
	}

	// Group target classes by localized seed-row content (hash bucket plus
	// exact compare): the shared tree only depends on the seed row, so
	// classes differing in guards, R class, or witness rows still share it.
	type tgroup struct {
		row     []uint64 // localized seed row
		seeds   []int32
		classes []int32
	}
	var groups []*tgroup
	buckets := make(map[uint64][]*tgroup)
	buf := make([]uint64, lw)
	for bc := 0; bc < ncl; bc++ {
		drow := dirOut.Row(int(members[byClass[bc][0]]))
		for i := range buf {
			buf[i] = 0
		}
		for wi, word := range drow {
			for m := word & mask[wi]; m != 0; m &= m - 1 {
				graph.BitSet(buf, int(lof[wi<<6+bits.TrailingZeros64(m)]))
			}
		}
		h := uint64(1469598103934665603)
		for _, wd := range buf {
			h ^= wd
			h *= 1099511628211
		}
		var g *tgroup
		for _, cand := range buckets[h] {
			if wordsEqual64(cand.row, buf) {
				g = cand
				break
			}
		}
		if g == nil {
			row := make([]uint64, lw)
			copy(row, buf)
			var seeds []int32
			for wi, word := range row {
				for ; word != 0; word &= word - 1 {
					seeds = append(seeds, int32(wi<<6+bits.TrailingZeros64(word)))
				}
			}
			g = &tgroup{row: row, seeds: seeds}
			buckets[h] = append(buckets[h], g)
			groups = append(groups, g)
		}
		g.classes = append(g.classes, int32(bc))
	}
	// Too little sharing: the per-tree and per-cell state would not
	// amortize over denseSolve's straight per-target sweep.
	if len(groups) > nl/3 {
		return false
	}

	// Local dense adjacency, exactly as denseSolve builds it.
	adj := ag.G.Adj
	L := graph.NewBitMatrix(nl)
	tl := graph.NewBitMatrix(nl)
	for lu, gv := range members {
		gu := int(gv)
		row := L.Row(lu)
		for _, v := range adj[gu] {
			if graph.BitGet(mask, v) {
				graph.BitSet(row, int(lof[v]))
			}
		}
		for wi, word := range dirOut.Row(gu) {
			for m := word & mask[wi]; m != 0; m &= m - 1 {
				graph.BitSet(row, int(lof[wi<<6+bits.TrailingZeros64(m)]))
			}
		}
		trow := tl.Row(lu)
		for wi, word := range dirIn.Row(gu) {
			for m := word & mask[wi]; m != 0; m &= m - 1 {
				graph.BitSet(trow, int(lof[wi<<6+bits.TrailingZeros64(m)]))
			}
		}
	}

	flowB := newClassFlow(nl) // shared uncut tree of the current seed row
	flowC := newClassFlow(nl) // per-target cut tree, derived incrementally
	df := graph.NewDenseFlow(L)
	slots := make([]aclsSlot, ncl)
	tw := graph.WordsFor(2 * (nl + 2))

	visG := make([]uint64, len(mask)) // flowB.vis in global bit positions
	visGEp := int32(0)
	var pvis []uint64
	var pstack []int32
	bG := make([]uint64, len(mask)) // global members of the current target class
	bGEp := int32(0)
	var lt *graph.BitMatrix // L's transpose, for witness-predecessor rows
	var cvis []uint64
	var ctin, ctout []int32
	var sbS, tbS, vbS []uint64 // sparse-bracket scratch (survivors, targets, visited)
	slBuf := make([]int32, 0, sparseCap+1)
	var selfT []int32
	tepoch := int32(0) // advances per tree group
	bepoch := int32(0) // advances per target class
	lepoch := int32(0) // advances per target access

	for _, g := range groups {
		tepoch++
		treeReady := false
		seeds, seedsRow := g.seeds, g.row

		for _, bc := range g.classes {
			bepoch++

			for _, lb32 := range byClass[bc] {
				lb := int(lb32)
				gb := int(members[lb])
				lepoch++
				cutReady := false
				cand := sc.cand
				if !candidateRow(ag, gb, em, con.EndpointsMode, cand) {
					continue
				}
				for i := range cand {
					cand[i] &= mask[i]
				}
				row := out.byB.Row(gb)
				drow := dirOut.Row(gb)
				rest := false
				for i := range cand {
					d := drow[i] & cand[i] // single conflict edge b -> a
					row[i] |= d
					cand[i] &^= d
					if cand[i] != 0 {
						rest = true
					}
				}
				if !rest {
					continue
				}
				if len(seeds) == 0 {
					continue // no usable conflict edge leaves b within the region
				}
				if !treeReady {
					treeReady = true
					flowB.reach(L, seedsRow, nil)
				}

				for wi, word := range cand {
					for ; word != 0; word &= word - 1 {
						a := wi<<6 + bits.TrailingZeros64(word)
						la := int(lof[a])
						st := &slots[lcOf[la]]

						// Tier 0: a seed that is itself a witness is accepted
						// by the reference before any la/lb filtering — even
						// when it equals la — so the whole (a-class, tree)
						// cell is TRUE.
						// Tier 1: shared-tree interval certificate. Per
						// (a-class, target) cell the witnesses OUTSIDE
						// subtree(lb) are summarized once by their count and
						// entry-time extremes; a pair then has an uncovered
						// witness iff subtree(la) fails to bracket those
						// extremes — three integer compares on the hot path
						// instead of a rank query per pair.
						if st.e1 != tepoch {
							st.e1 = tepoch
							tla := tl.Row(la)
							st.sw = graph.AndAny(seedsRow, tla)
							if !st.sw {
								st.w1.build(tla, flowB.vis, flowB.tin, tw)
							}
						}
						res, dec := false, false
						if st.sw {
							dec, res = true, true
						} else if st.w1.total == 0 {
							dec = true // unreachable even without the cut
						} else {
							if st.eX != lepoch {
								st.eX = lepoch
								st.xOut, st.xMin, st.xMax = st.w1.outside(flowB.vis, flowB.tin, flowB.tout, lb)
							}
							if st.xOut > 0 &&
								!(graph.BitGet(flowB.vis, la) && flowB.tin[la] <= st.xMin && st.xMax <= flowB.tout[la]) {
								dec, res = true, true // witness outside both subtrees
							} else if graph.BitGet(tl.Row(la), la) && graph.BitGet(flowB.vis, la) &&
								!inSubtree(flowB.vis, flowB.tin, flowB.tout, lb, la) {
								dec, res = true, true // witness y == a, tree path avoids b
							}
						}

						// Tier 1.5: cut-tree certificate. One BFS with lb's
						// in-edges deleted — exactly denseSolve's per-target
						// tree — amortized over every unresolved pair of this
						// lb. Cut-tree paths are lb-legal by construction
						// (seed-equal-to-cut is still expanded, matching the
						// reference), so a witness outside subtree(la) is an
						// exact TRUE, and zero reachable witnesses is an exact
						// FALSE: the reference's accepted targets are a subset
						// of cut-reach because a target is never lb here.
						if !dec {
							tla := tl.Row(la)
							selfConf := graph.BitGet(tla, la)
							if !cutReady {
								cutReady = true
								if graph.BitGet(seedsRow, lb) {
									// The reference expands a seed equal to its
									// own cut, so the cut tree IS the shared
									// tree: every tree path has lb only in
									// start position, which is legal.
									cvis, ctin, ctout = flowB.vis, flowB.tin, flowB.tout
								} else {
									if lt == nil {
										lt = L.Transpose()
									}
									flowC.reachCutFrom(L, lt, flowB, lb)
									cvis, ctin, ctout = flowC.vis, flowC.tin, flowC.tout
								}
							}
							if st.eC != lepoch {
								st.eC = lepoch
								st.wCut.build(tla, cvis, ctin, tw)
							}
							if st.wCut.total == 0 {
								dec = true
							} else if coveredCount(&st.wCut, cvis, ctin, ctout, la, la) < st.wCut.total {
								dec, res = true, true
							} else if selfConf && graph.BitGet(cvis, la) {
								// Witness y == a: accepted on generation by the
								// reference, and its cut-tree path has la only
								// as its endpoint.
								dec, res = true, true
							}

							// Tier 1.75: witness-predecessor certificate. The
							// pair is TRUE the moment any cut-tree node u
							// outside subtree(la) carries an edge into ANY
							// witness: u's tree path avoids lb (cut) and la
							// (outside its subtree), and the reference accepts
							// a generated witness before filtering it — even
							// one equal to la. P = ∪ preds(witnesses) depends
							// only on the a-class, so the per-pair test is one
							// interval rank query on the cut tree.
							if !dec {
								if !st.pOK {
									st.pOK = true
									if lt == nil {
										lt = L.Transpose()
									}
									st.p = make([]uint64, lw)
									for wi, word := range tla {
										for ; word != 0; word &= word - 1 {
											r := lt.Row(wi<<6 + bits.TrailingZeros64(word))
											for i := range st.p {
												st.p[i] |= r[i]
											}
										}
									}
								}
								if st.eP != lepoch {
									st.eP = lepoch
									st.wP.build(st.p, cvis, ctin, tw)
								}
								if st.wP.total > 0 &&
									coveredCount(&st.wP, cvis, ctin, ctout, la, la) < st.wP.total {
									dec, res = true, true
								}
							}
						}

						// Tier 2: the exact per-pair search.
						if !dec {
							res = df.AvoidReach(seeds, lb, la, tl.Row(la))
						}
						if !res {
							continue
						}

						if con.Removed != nil {
							// Stage 2 runs at cell granularity: the removal
							// data (cover, conflict rows, witness rows) is
							// class-invariant, so one decision usually covers
							// every pair of the (a-class, target class) cell.
							// The screen: a cover untouched by the shared
							// tree's global uncut reach cannot remove any
							// pair. Then two exact searches bracket the cell:
							// blocking BOTH whole classes under-approximates
							// blocking just {a, b}, so a hit proves the cell
							// TRUE; blocking neither endpoint and widening
							// the targets to the whole a-class
							// over-approximates every pair, so a miss proves
							// the cell FALSE. Only cells the bracket cannot
							// settle pay per-pair searches.
							if st.e2 != bepoch {
								st.e2 = bepoch
								covG := con.RemovedCover(a, gb, sc.cover)
								if visGEp != tepoch {
									visGEp = tepoch
									for i := range visG {
										visG[i] = 0
									}
									for wi, word := range flowB.vis {
										for ; word != 0; word &= word - 1 {
											graph.BitSet(visG, int(members[wi<<6+bits.TrailingZeros64(word)]))
										}
									}
								}
								covHit := false
								for i, w := range visG {
									if covG[i]&mask[i]&w != 0 {
										covHit = true
										break
									}
								}
								if !covHit {
									st.s2 = s2Keep // no removable access reachable
								} else {
									if st.aG == nil {
										st.aG = make([]uint64, len(mask))
										for _, v := range byClass[lcOf[la]] {
											graph.BitSet(st.aG, int(members[v]))
										}
									}
									// Drop screen: every removal-stage search —
									// bracket passes and per-pair residues alike —
									// seeds from the target's conflict row and so
									// reaches only within the group's uncut reach.
									// A cell none of whose surviving witnesses
									// (outside the cover, or exempt as the
									// a-class) is uncut-reachable drops outright.
									ta := dirIn.Row(a)
									survReach := false
									for i, w := range visG {
										t := ta[i] & mask[i]
										if s := t&^covG[i] | t&st.aG[i]; s&w != 0 {
											survReach = true
											break
										}
									}
									if !survReach {
										st.s2 = s2Drop
									} else if gd == nil {
										st.s2 = s2PerPair
									} else {
										if bGEp != bepoch {
											bGEp = bepoch
											for i := range bG {
												bG[i] = 0
											}
											for _, v := range byClass[bc] {
												graph.BitSet(bG, int(members[v]))
											}
										}
										var sparse bool
										slBuf, sparse = survivorList(mask, covG, slBuf, sparseCap)
										if sparse {
											if sbS == nil {
												sbS = make([]uint64, len(mask))
												tbS = make([]uint64, len(mask))
												vbS = make([]uint64, len(mask))
											}
											selfT = selfT[:0]
											for _, v := range byClass[lcOf[la]] {
												if gv := int(members[v]); graph.BitGet(ta, gv) {
													selfT = append(selfT, int32(gv))
												}
											}
											st.s2, sc.queue = sparseCellRestrict(gd, ta, dirOut.Row(gb), st.aG, bG, slBuf, selfT, sbS, tbS, vbS, sc.queue)
										} else {
											st.s2 = cellRestrict(gd, mask, covG, ta, dirOut.Row(gb), st.aG, bG, sc.vis, sc.teff, sc.queue)
										}
									}
								}
							}
							if st.s2 == s2Drop {
								continue
							}
							if st.s2 == s2PerPair {
								if gd != nil {
									covG := con.RemovedCover(a, gb, sc.cover)
									var hitP bool
									sc.queue, hitP = denseRestrict(gd, mask, covG, dirIn.Row(a), dirOut.Row(gb), a, gb, sc.vis, sc.teff, sc.queue)
									if !hitP {
										continue
									}
								} else {
									if pvis == nil {
										pvis = make([]uint64, lw)
										pstack = make([]int32, 0, nl)
									}
									var hitP bool
									pstack, hitP = densePairSearch(L, pvis, pstack, tl.Row(la), members, seeds, a, la, gb, lb, con.Removed)
									if !hitP {
										continue
									}
								}
							}
						}
						graph.BitSet(row, a)
					}
				}
			}
		}
	}
	return true
}

// classSolveUsable reports whether the constraint shape supports the
// class-condensed engine: an access classing must exist, per-pair
// filters are opaque to sharing, and the Removed stage needs cover rows
// to localize the removal set per class cell.
func classSolveUsable(con Constraints, filter func(a, b int) bool) bool {
	return con.AccessClass != nil && filter == nil &&
		(con.Removed == nil || con.RemovedCover != nil)
}

// aclsSlot is the per-a-class state of the current tree group, target
// class, and target access: tier-0/1 state on the shared tree, cut-tree
// witness stats, the witness-predecessor row, and the Removed stage's
// cell decision. Epoch fields tie each part to the tree group (e1),
// target class (e2), or target access (eC, eP) it was built for; buffers
// are allocated on first use and reused across groups.
type aclsSlot struct {
	e1 int32
	sw bool // some seed is itself a witness: whole cell TRUE
	w1 witStats

	// Witnesses outside subtree(lb) on the shared tree, summarized per
	// (a-class, target access): count and entry-time extremes. The tier-1
	// per-pair test reduces to "does subtree(la) bracket [xMin, xMax]".
	eX         int32
	xOut       int32
	xMin, xMax int32

	eC   int32
	wCut witStats

	pOK bool
	p   []uint64 // union of the witnesses' predecessor rows
	eP  int32
	wP  witStats

	e2 int32
	s2 uint8    // cell decision for the Removed stage
	aG []uint64 // global members of this a-class
}

// Cell decisions for the Removed stage.
const (
	s2Keep    uint8 = iota // every pair of the cell survives removal
	s2Drop                 // no pair survives
	s2PerPair              // bracket inconclusive: exact per-pair search
)

// sparseCap bounds the survivor count under which the Removed-stage
// bracket runs on the survivor subgraph instead of the full-width sweeps.
const sparseCap = 128

// cellRestrict brackets one (a-class, b-class) cell of the Removed
// stage. The pessimistic search blocks every member of both classes as
// interior — an under-approximation of any single pair's search, which
// blocks only {a, b} — so reaching a target proves all pairs TRUE. The
// optimistic search blocks neither endpoint and accepts the whole
// a-class as exempt targets — an over-approximation — so exhausting it
// proves all pairs FALSE. Targets are tested before the interior filter,
// matching the reference's removed-before-target ordering.
func cellRestrict(gd *mixedAdj, mask, cov, ta, drow, aG, bG, vis, teff []uint64, queue []int32) uint8 {
	// Pessimistic pass: interior = region complement ∪ cover ∪ both classes.
	any := false
	for i := range teff {
		t := ta[i] & mask[i] &^ cov[i]
		teff[i] = t
		any = any || t != 0
	}
	if any {
		for i := range vis {
			vis[i] = ^mask[i] | cov[i] | aG[i] | bG[i]
		}
		queue = queue[:0]
		if restrictSweep(gd, drow, mask, vis, teff, &queue) {
			return s2Keep
		}
	}
	// Optimistic pass: interior = region complement ∪ cover only; targets
	// widened by the a-class exemption; the b-self continuation widened to
	// any self-conflicting member of the b-class.
	any = false
	for i := range teff {
		t := (ta[i]&^cov[i] | ta[i]&aG[i]) & mask[i]
		teff[i] = t
		any = any || t != 0
	}
	if !any {
		return s2Drop
	}
	for i := range vis {
		vis[i] = ^mask[i] | cov[i]
	}
	queue = queue[:0]
	for wi := range vis {
		for m := drow[wi] & bG[wi] & mask[wi]; m != 0; m &= m - 1 {
			b := wi<<6 + bits.TrailingZeros64(m)
			if !graph.BitGet(vis, b) {
				graph.BitSet(vis, b)
				queue = append(queue, int32(b))
			}
		}
	}
	if restrictSweep(gd, drow, mask, vis, teff, &queue) {
		return s2PerPair
	}
	return s2Drop
}

// survivorList collects the region nodes outside the cover, bailing out
// once more than max survive (the dense bracket is cheaper then).
func survivorList(mask, cov []uint64, sl []int32, max int) ([]int32, bool) {
	sl = sl[:0]
	for wi, w := range mask {
		for m := w &^ cov[wi]; m != 0; m &= m - 1 {
			if len(sl) == max {
				return sl, false
			}
			sl = append(sl, int32(wi<<6+bits.TrailingZeros64(m)))
		}
	}
	return sl, true
}

// sparseCellRestrict is cellRestrict on the survivor subgraph: when the
// cover blocks all but a handful of region nodes, both bracket passes can
// only ever visit survivors, so the full-width sweeps collapse to list
// walks over sl (= mask &^ cov). selfT lists the a-class members that are
// witnesses — the optimistic pass's extra targets, which stay targets
// even when covered. sb/tb/vb are zeroed scratch bitsets of global width,
// left zeroed again on return.
func sparseCellRestrict(gd *mixedAdj, ta, drow, aG, bG []uint64,
	sl, selfT []int32, sb, tb, vb []uint64, queue []int32) (uint8, []int32) {
	for _, v := range sl {
		graph.BitSet(sb, int(v))
	}
	clean := func() {
		for _, v := range sl {
			graph.BitClear(sb, int(v))
			graph.BitClear(tb, int(v))
		}
		for _, v := range selfT {
			graph.BitClear(tb, int(v))
		}
	}
	// Pessimistic pass: targets are the surviving witnesses; expansion
	// only through survivors outside both classes. A hit proves every
	// pair of the cell survives removal (blocking whole classes
	// under-approximates blocking one endpoint pair).
	hit := false
	nt := 0
	for _, v := range sl {
		if graph.BitGet(ta, int(v)) {
			graph.BitSet(tb, int(v))
			nt++
			if graph.BitGet(drow, int(v)) {
				hit = true // seed-step target, as restrictSweep's first loop
			}
		}
	}
	if nt > 0 && !hit {
		queue = queue[:0]
		for _, v := range sl {
			if graph.BitGet(drow, int(v)) && !graph.BitGet(aG, int(v)) && !graph.BitGet(bG, int(v)) {
				graph.BitSet(vb, int(v))
				queue = append(queue, v)
			}
		}
		hit = sparseSweep(gd, aG, bG, true, nil, sl, sb, tb, vb, &queue)
		for _, v := range sl {
			graph.BitClear(vb, int(v))
		}
	}
	if hit {
		clean()
		return s2Keep, queue
	}
	// Optimistic pass: interior is the cover alone, targets widened by the
	// a-class exemption; exhausting it proves no pair survives.
	for _, v := range selfT {
		graph.BitSet(tb, int(v))
		if graph.BitGet(drow, int(v)) {
			hit = true
		}
	}
	if nt == 0 && len(selfT) == 0 {
		clean()
		return s2Drop, queue
	}
	if !hit {
		queue = queue[:0]
		for _, v := range sl {
			if graph.BitGet(drow, int(v)) {
				graph.BitSet(vb, int(v))
				queue = append(queue, v)
			}
		}
		hit = sparseSweep(gd, nil, nil, false, selfT, sl, sb, tb, vb, &queue)
		for _, v := range sl {
			graph.BitClear(vb, int(v))
		}
	}
	clean()
	if hit {
		return s2PerPair, queue
	}
	return s2Drop, queue
}

// sparseSweep is restrictSweep over the survivor subgraph: per queue node
// the dense-row scan walks the survivor list instead of the full width,
// and extraT (targets outside the survivor set — the optimistic pass's
// covered a-class members) is tested against the raw row, matching the
// reference's targets-before-interior ordering.
func sparseSweep(gd *mixedAdj, aG, bG []uint64, pess bool,
	extraT, sl []int32, sb, tb, vb []uint64, queue *[]int32) bool {
	q := *queue
	for qi := 0; qi < len(q); qi++ {
		u := int(q[qi])
		row := gd.dir.Row(u)
		for _, x := range extraT {
			if graph.BitGet(row, int(x)) {
				*queue = q
				return true
			}
		}
		for _, v32 := range sl {
			v := int(v32)
			if !graph.BitGet(row, v) {
				continue
			}
			if graph.BitGet(tb, v) {
				*queue = q
				return true
			}
			if graph.BitGet(vb, v) || (pess && (graph.BitGet(aG, v) || graph.BitGet(bG, v))) {
				continue
			}
			graph.BitSet(vb, v)
			q = append(q, v32)
		}
		for _, v := range gd.adj[u] {
			if graph.BitGet(tb, v) {
				*queue = q
				return true
			}
			if !graph.BitGet(sb, v) || graph.BitGet(vb, v) ||
				(pess && (graph.BitGet(aG, v) || graph.BitGet(bG, v))) {
				continue
			}
			graph.BitSet(vb, v)
			q = append(q, int32(v))
		}
	}
	*queue = q
	return false
}

// restrictSweep runs the shared body of both cellRestrict passes: one
// seed step over the target class's conflict row, then a masked BFS on
// the global mixed adjacency, accepting any teff target on generation.
// queue may arrive pre-seeded (the b-self continuation).
func restrictSweep(gd *mixedAdj, drow, mask, vis, teff []uint64, queue *[]int32) bool {
	q := *queue
	for wi := range vis {
		sw := drow[wi] & mask[wi]
		if sw == 0 {
			continue
		}
		if sw&teff[wi] != 0 {
			*queue = q
			return true
		}
		nw := sw &^ vis[wi]
		vis[wi] |= nw
		for ; nw != 0; nw &= nw - 1 {
			q = append(q, int32(wi<<6+bits.TrailingZeros64(nw)))
		}
	}
	for qi := 0; qi < len(q); qi++ {
		u := int(q[qi])
		row := gd.dir.Row(u)
		for wi := range vis {
			if row[wi]&teff[wi] != 0 {
				*queue = q
				return true
			}
			nw := row[wi] &^ vis[wi]
			if nw == 0 {
				continue
			}
			vis[wi] |= nw
			for ; nw != 0; nw &= nw - 1 {
				q = append(q, int32(wi<<6+bits.TrailingZeros64(nw)))
			}
		}
		for _, v := range gd.adj[u] {
			if graph.BitGet(teff, v) {
				*queue = q
				return true
			}
			if !graph.BitGet(vis, v) {
				graph.BitSet(vis, v)
				q = append(q, int32(v))
			}
		}
	}
	*queue = q
	return false
}

// classFlow runs one uncut BFS over the local dense adjacency with an
// optional blocked set folded into visited up front (blocked nodes are
// never ordered, expanded, or given tree positions), then assigns
// preorder entry/exit times over the first-visit tree. Subtree(v) is the
// time interval [tin[v], tout[v]]; intervals of distinct nodes are
// nested or disjoint, which is what makes witness counting additive.
type classFlow struct {
	nl, lw     int
	vis        []uint64
	order      []int32
	parent     []int32
	tin, tout  []int32
	head, next []int32
	stack      []int32

	// reachCutFrom scratch: subtree members, their bitset, full order.
	subs   []int32
	smask  []uint64
	forder []int32
}

func newClassFlow(nl int) *classFlow {
	return &classFlow{
		nl: nl, lw: graph.WordsFor(nl),
		vis:    make([]uint64, graph.WordsFor(nl)),
		parent: make([]int32, nl),
		tin:    make([]int32, nl+1), tout: make([]int32, nl+1),
		head: make([]int32, nl+1), next: make([]int32, nl),
	}
}

// reachCutFrom derives the tree for "reachable while avoiding lb" from
// base, the same seed row's uncut tree, touching only subtree(lb): every
// node outside it keeps its base path (which avoids lb by the nesting of
// first-visit intervals), so the cut can only unhook subtree(lb) members,
// and each of those is re-entered iff some surviving node carries an edge
// into it. The visited set is the exact cut BFS fixpoint; tree paths stay
// legal lb-avoiding paths. Callers must handle lb-as-seed separately
// (the reference expands such a seed, making the cut tree identical to
// base) — here lb is simply removed.
func (f *classFlow) reachCutFrom(L, lt *graph.BitMatrix, base *classFlow, lb int) {
	copy(f.vis, base.vis)
	f.order = f.order[:0]
	if !graph.BitGet(base.vis, lb) {
		// lb unreached: cutting it changes nothing; reuse base's layout.
		copy(f.parent, base.parent)
		f.forder = append(f.forder[:0], base.order...)
		f.buildIntervals(f.forder)
		return
	}
	if f.smask == nil {
		f.smask = make([]uint64, f.lw)
	}
	// Collect subtree(lb) via base's child lists and unhook it.
	f.subs = append(f.subs[:0], int32(lb))
	for i := 0; i < len(f.subs); i++ {
		for c := base.head[f.subs[i]]; c != -1; c = base.next[c] {
			f.subs = append(f.subs, c)
		}
	}
	for _, v := range f.subs {
		graph.BitClear(f.vis, int(v))
		graph.BitSet(f.smask, int(v))
	}
	copy(f.parent, base.parent)
	// Re-entry scan: a subtree member (never lb itself) with any surviving
	// predecessor is reachable again through it.
	for _, v := range f.subs {
		if int(v) == lb {
			continue
		}
		for wi, word := range lt.Row(int(v)) {
			if m := word & f.vis[wi]; m != 0 {
				f.parent[v] = int32(wi<<6 + bits.TrailingZeros64(m))
				graph.BitSet(f.vis, int(v))
				graph.BitClear(f.smask, int(v))
				f.order = append(f.order, v)
				break
			}
		}
	}
	// Fixpoint: re-entered members may reach deeper unhooked ones.
	for i := 0; i < len(f.order); i++ {
		u := f.order[i]
		row := L.Row(int(u))
		for wi := range f.smask {
			nw := row[wi] & f.smask[wi]
			if nw == 0 {
				continue
			}
			f.smask[wi] &^= nw
			f.vis[wi] |= nw
			for ; nw != 0; nw &= nw - 1 {
				v := int32(wi<<6 + bits.TrailingZeros64(nw))
				f.parent[v] = u
				f.order = append(f.order, v)
			}
		}
	}
	for _, v := range f.subs {
		graph.BitClear(f.smask, int(v)) // leave the scratch mask clean
	}
	// Full discovery order = base order filtered to survivors; parents of
	// survivors outside the subtree are themselves outside it, so the
	// linking below always sees a parent before its children is not
	// required — only that every visited node appears exactly once.
	f.forder = f.forder[:0]
	for _, v := range base.order {
		if graph.BitGet(f.vis, int(v)) {
			f.forder = append(f.forder, v)
		}
	}
	f.buildIntervals(f.forder)
}

func (f *classFlow) reach(L *graph.BitMatrix, seedsRow, blocked []uint64) {
	f.order = f.order[:0]
	if blocked != nil {
		copy(f.vis, blocked)
	} else {
		for i := range f.vis {
			f.vis[i] = 0
		}
	}
	root := int32(f.nl)
	for wi := range f.vis {
		nw := seedsRow[wi] &^ f.vis[wi]
		if nw == 0 {
			continue
		}
		f.vis[wi] |= nw
		for ; nw != 0; nw &= nw - 1 {
			v := int32(wi<<6 + bits.TrailingZeros64(nw))
			f.parent[v] = root
			f.order = append(f.order, v)
		}
	}
	for i := 0; i < len(f.order); i++ {
		row := L.Row(int(f.order[i]))
		u := f.order[i]
		for wi := range f.vis {
			nw := row[wi] &^ f.vis[wi]
			if nw == 0 {
				continue
			}
			f.vis[wi] |= nw
			for ; nw != 0; nw &= nw - 1 {
				v := int32(wi<<6 + bits.TrailingZeros64(nw))
				f.parent[v] = u
				f.order = append(f.order, v)
			}
		}
	}
	f.buildIntervals(f.order)
}

// buildIntervals lays the first-visit tree over the given discovery
// order (every visited node exactly once) out as preorder entry/exit
// times under the virtual root.
func (f *classFlow) buildIntervals(order []int32) {
	root := int32(f.nl)
	f.head[root] = -1
	for _, v := range order {
		f.head[v] = -1
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		p := f.parent[v]
		f.next[v] = f.head[p]
		f.head[p] = v
	}
	t := int32(0)
	f.stack = append(f.stack[:0], root)
	for len(f.stack) > 0 {
		v := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		if v < 0 {
			f.tout[-(v + 1)] = t
			t++
			continue
		}
		f.tin[v] = t
		t++
		f.stack = append(f.stack, -(v + 1))
		for c := f.head[v]; c != -1; c = f.next[c] {
			f.stack = append(f.stack, c)
		}
	}
}

// witStats is the witness-position index of one (a-class, tree) pair: a
// bitset over tree entry times with per-word prefix popcounts, so any
// subtree's witness count is a two-rank difference.
type witStats struct {
	wbits []uint64
	pref  []int32
	total int32
	// Global entry-time extremes over all witnesses (valid when total > 0).
	tmin0, tmax0 int32
}

func (st *witStats) build(tla, vis []uint64, tin []int32, tw int) {
	if st.wbits == nil {
		st.wbits = make([]uint64, tw)
		st.pref = make([]int32, tw+1)
	}
	for i := range st.wbits {
		st.wbits[i] = 0
	}
	for wi := range vis {
		for m := tla[wi] & vis[wi]; m != 0; m &= m - 1 {
			y := wi<<6 + bits.TrailingZeros64(m)
			graph.BitSet(st.wbits, int(tin[y]))
		}
	}
	run := int32(0)
	loW, hiW := -1, -1
	for i, wd := range st.wbits {
		st.pref[i] = run
		run += int32(bits.OnesCount64(wd))
		if wd != 0 {
			if loW == -1 {
				loW = i
			}
			hiW = i
		}
	}
	st.pref[tw] = run
	st.total = run
	if run > 0 {
		st.tmin0 = int32(loW<<6 + bits.TrailingZeros64(st.wbits[loW]))
		st.tmax0 = int32(hiW<<6 + 63 - bits.LeadingZeros64(st.wbits[hiW]))
	}
}

// selectKth returns the entry time of the k-th witness, 1-based (caller
// guarantees 1 <= k <= total): binary search on the per-word prefix
// counts, then an in-word select.
func (st *witStats) selectKth(k int32) int32 {
	lo, hi := 0, len(st.pref)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if st.pref[mid] < k {
			lo = mid
		} else {
			hi = mid
		}
	}
	w := st.wbits[lo]
	for j := k - st.pref[lo]; j > 1; j-- {
		w &= w - 1
	}
	return int32(lo<<6 + bits.TrailingZeros64(w))
}

// outside summarizes the witnesses lying OUTSIDE subtree(lb): their count
// and their entry-time extremes. With first-visit intervals, a witness is
// outside iff its entry time falls outside [tin[lb], tout[lb]], so the
// extremes come from the global extremes when those already escape the
// interval and from one rank-directed select otherwise.
func (st *witStats) outside(vis []uint64, tin, tout []int32, lb int) (count, tmin, tmax int32) {
	if !graph.BitGet(vis, lb) {
		return st.total, st.tmin0, st.tmax0
	}
	below := st.cumBelow(tin[lb])
	aboveStart := st.cumBelow(tout[lb] + 1)
	count = st.total - (aboveStart - below)
	if count == 0 {
		return 0, 0, 0
	}
	if below > 0 {
		tmin = st.tmin0
	} else {
		tmin = st.selectKth(aboveStart + 1) // first witness past the subtree
	}
	if aboveStart < st.total {
		tmax = st.tmax0
	} else {
		tmax = st.selectKth(below) // last witness before the subtree
	}
	return count, tmin, tmax
}

// cumBelow counts witness entry times strictly below t.
func (st *witStats) cumBelow(t int32) int32 {
	wi := int(t >> 6)
	r := st.pref[wi]
	if s := uint(t) & 63; s != 0 {
		r += int32(bits.OnesCount64(st.wbits[wi] & (1<<s - 1)))
	}
	return r
}

// coveredCount counts the witnesses of st lying in subtree(la) ∪
// subtree(lb) of the tree described by (vis, tin, tout); an unreached
// node has no subtree. First-visit intervals are nested or disjoint, so
// the union is interval arithmetic, never enumeration.
func coveredCount(st *witStats, vis []uint64, tin, tout []int32, la, lb int) int32 {
	ra, rb := graph.BitGet(vis, la), graph.BitGet(vis, lb)
	var ca, cb int32
	if ra {
		ca = st.cumBelow(tout[la]+1) - st.cumBelow(tin[la])
	}
	if rb {
		cb = st.cumBelow(tout[lb]+1) - st.cumBelow(tin[lb])
	}
	if ra && rb {
		if tin[la] <= tin[lb] && tout[lb] <= tout[la] {
			return ca
		}
		if tin[lb] <= tin[la] && tout[la] <= tout[lb] {
			return cb
		}
	}
	return ca + cb
}

// inSubtree reports whether y lies in subtree(v); both must be reached.
func inSubtree(vis []uint64, tin, tout []int32, v, y int) bool {
	return graph.BitGet(vis, v) && tin[v] <= tin[y] && tout[y] <= tout[v]
}

func wordsEqual64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, w := range a {
		if w != b[i] {
			return false
		}
	}
	return true
}
