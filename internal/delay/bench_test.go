package delay

import (
	"fmt"
	"testing"

	"repro/internal/conflict"
	"repro/internal/ir"
	"repro/internal/progen"
	"repro/internal/sem"
	"repro/internal/source"
)

// benchProgram mirrors the scaling-program selection of the syncanal and
// bench packages: fixed progen options scaled by target, first seed whose
// built function lands within [0.9, 1.25]x the target access count.
func benchProgram(tb testing.TB, target int) *ir.Fn {
	tb.Helper()
	opts := progen.Options{
		Procs: 4, MaxPhases: 4, MaxStmts: target / 4, MaxDepth: 2,
		Arrays: 3, Scalars: 3, Events: 2, Locks: 2,
	}
	for seed := int64(0); seed < 500; seed++ {
		prog, err := source.Parse(progen.Generate(seed, opts))
		if err != nil {
			continue
		}
		info, err := sem.Check(prog)
		if err != nil {
			continue
		}
		fn, err := ir.Build(info, ir.BuildOptions{Procs: 4})
		if err != nil {
			continue
		}
		if n := len(fn.Accesses); n >= target*9/10 && n <= target*5/4 {
			return fn
		}
	}
	tb.Fatalf("no progen seed lands near %d accesses", target)
	return nil
}

// BenchmarkAnalysisDelayCompute measures the back-path engine alone
// (plain Shasha-Snir over a prebuilt access graph and conflict set).
func BenchmarkAnalysisDelayCompute(b *testing.B) {
	for _, size := range []int{64, 128, 256, 512} {
		fn := benchProgram(b, size)
		ag := ir.BuildAccessGraph(fn)
		cs := conflict.Compute(fn)
		b.Run(fmt.Sprintf("acc%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ShashaSnir(ag, cs)
			}
		})
	}
}
