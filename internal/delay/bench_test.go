package delay

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/conflict"
	"repro/internal/ir"
	"repro/internal/progen"
	"repro/internal/sem"
	"repro/internal/source"
)

// benchProgram mirrors the scaling-program selection of the syncanal and
// bench packages: fixed progen options scaled by target, first seed whose
// built function lands within [0.9, 1.25]x the target access count.
func benchProgram(tb testing.TB, target int) *ir.Fn {
	tb.Helper()
	opts := progen.Options{
		Procs: 4, MaxPhases: 4, MaxStmts: target / 4, MaxDepth: 2,
		Arrays: 3, Scalars: 3, Events: 2, Locks: 2,
	}
	for seed := int64(0); seed < 500; seed++ {
		prog, err := source.Parse(progen.Generate(seed, opts))
		if err != nil {
			continue
		}
		info, err := sem.Check(prog)
		if err != nil {
			continue
		}
		fn, err := ir.Build(info, ir.BuildOptions{Procs: 4})
		if err != nil {
			continue
		}
		if n := len(fn.Accesses); n >= target*9/10 && n <= target*5/4 {
			return fn
		}
	}
	tb.Fatalf("no progen seed lands near %d accesses", target)
	return nil
}

// tierFn builds a pinned progen scale tier (no seed scan at bench time).
func tierFn(tb testing.TB, name string) *ir.Fn {
	tb.Helper()
	tier, ok := progen.FindScaleTier(name)
	if !ok {
		tb.Fatalf("unknown scale tier %q", name)
	}
	prog, err := source.Parse(progen.Generate(tier.Seed, tier.Opts))
	if err != nil {
		tb.Fatalf("%s: parse: %v", name, err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		tb.Fatalf("%s: sem: %v", name, err)
	}
	fn, err := ir.Build(info, ir.BuildOptions{Procs: tier.Opts.Procs})
	if err != nil {
		tb.Fatalf("%s: build: %v", name, err)
	}
	return fn
}

// BenchmarkAnalysisDelayCompute measures the back-path engine alone
// (plain Shasha-Snir over a prebuilt access graph and conflict set). The
// small sizes scan for a seed; the large entries are the pinned
// progen.ScaleTiers programs, exercising the hub-compressed symmetric
// engine far past the quadratic-matrix sizes.
func BenchmarkAnalysisDelayCompute(b *testing.B) {
	run := func(name string, fn *ir.Fn) {
		ag := ir.BuildAccessGraph(fn)
		cs := conflict.Compute(fn)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ShashaSnir(ag, cs)
			}
		})
	}
	for _, size := range []int{64, 128, 256, 512} {
		run(fmt.Sprintf("acc%d", size), benchProgram(b, size))
	}
	if os.Getenv("PSC_SCALE_TIERS") == "" {
		b.Log("set PSC_SCALE_TIERS=1 to run the multi-second scale tiers")
		return
	}
	for _, name := range []string{"acc2048", "acc8192", "acc32768"} {
		run(name, tierFn(b, name))
	}
}
