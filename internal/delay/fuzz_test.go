package delay

import (
	"testing"

	"repro/internal/conflict"
	"repro/internal/ir"
)

// FuzzBackPathEquivalence fuzzes the regionized engine (the default) and
// the whole-graph batched engine against the per-pair reference search:
// any seed/mode combination that produces a buildable program must yield
// pair-identical delay sets from all three.
func FuzzBackPathEquivalence(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		for mode := uint8(0); mode < 32; mode += 3 {
			f.Add(seed, mode)
		}
	}
	f.Fuzz(func(t *testing.T, seed int64, mode uint8) {
		fn := genFn(seed)
		if fn == nil || len(fn.Accesses) == 0 {
			t.Skip("seed does not build")
		}
		n := len(fn.Accesses)
		con := Constraints{}
		if mode&1 != 0 {
			con.ConflictDir = func(x, y int) bool { return (x+y)%3 != 0 || x <= y }
		}
		if mode&2 != 0 {
			con.Removed = func(a, b, z int) bool { return (a+2*b+3*z)%5 == 0 }
		}
		if mode&4 != 0 {
			con.PairFilter = func(a, b int) bool {
				return fn.Accesses[a].Kind.IsSync() || fn.Accesses[b].Kind.IsSync()
			}
		}
		if mode&8 != 0 {
			for i := 0; i < n; i += 7 {
				con.Endpoints = append(con.Endpoints, i)
			}
			if con.Endpoints == nil {
				con.Endpoints = []int{}
			}
			if mode&16 != 0 {
				con.EndpointsMode = EndpointsExclude
			}
		}
		ag := ir.BuildAccessGraph(fn)
		cs := conflict.Compute(fn)
		ref := con
		ref.Reference = true
		want := Compute(ag, cs, ref)
		for _, eng := range []struct {
			name string
			con  Constraints
		}{{"region", con}, {"whole", func() Constraints { c := con; c.Engine = EngineWhole; return c }()}} {
			got := Compute(ag, cs, eng.con)
			if got.Size() != want.Size() {
				t.Fatalf("mode %d %s: got %d pairs, reference %d\ngot:\n%swant:\n%s",
					mode, eng.name, got.Size(), want.Size(), got, want)
			}
			for _, p := range want.Pairs() {
				if !got.Has(p.A, p.B) {
					t.Fatalf("mode %d %s: reference pair [%d,%d] missing", mode, eng.name, p.A, p.B)
				}
			}
		}
	})
}
