package delay

import (
	"testing"

	"repro/internal/conflict"
	"repro/internal/ir"
)

// FuzzBackPathEquivalence fuzzes the batched engine against the per-pair
// reference search: any seed/mode combination that produces a buildable
// program must yield pair-identical delay sets.
func FuzzBackPathEquivalence(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		for mode := uint8(0); mode < 8; mode++ {
			f.Add(seed, mode)
		}
	}
	f.Fuzz(func(t *testing.T, seed int64, mode uint8) {
		fn := genFn(seed)
		if fn == nil || len(fn.Accesses) == 0 {
			t.Skip("seed does not build")
		}
		con := Constraints{}
		if mode&1 != 0 {
			con.ConflictDir = func(x, y int) bool { return (x+y)%3 != 0 || x <= y }
		}
		if mode&2 != 0 {
			con.Removed = func(a, b, z int) bool { return (a+2*b+3*z)%5 == 0 }
		}
		if mode&4 != 0 {
			con.PairFilter = func(a, b int) bool {
				return fn.Accesses[a].Kind.IsSync() || fn.Accesses[b].Kind.IsSync()
			}
		}
		ag := ir.BuildAccessGraph(fn)
		cs := conflict.Compute(fn)
		got := Compute(ag, cs, con)
		ref := con
		ref.Reference = true
		want := Compute(ag, cs, ref)
		if got.Size() != want.Size() {
			t.Fatalf("mode %d: got %d pairs, reference %d\ngot:\n%swant:\n%s",
				mode, got.Size(), want.Size(), got, want)
		}
		for _, p := range want.Pairs() {
			if !got.Has(p.A, p.B) {
				t.Fatalf("mode %d: reference pair [%d,%d] missing", mode, p.A, p.B)
			}
		}
	})
}
