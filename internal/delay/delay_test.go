package delay

import (
	"testing"

	"repro/internal/conflict"
	"repro/internal/ir"
)

func setup(t *testing.T, src string, procs int) (*ir.Fn, *ir.AccessGraph, *conflict.Set) {
	t.Helper()
	fn := ir.MustBuild(src, ir.BuildOptions{Procs: procs})
	return fn, ir.BuildAccessGraph(fn), conflict.Compute(fn)
}

const figure1 = `
shared int Data = 0;
shared int Flag = 0;
func main() {
    local int v = 0;
    if (MYPROC == 0) {
        Data = 1;    // a0
        Flag = 1;    // a1
    } else {
        v = Flag;    // a2
        v = Data;    // a3
    }
}
`

func TestFigure1Delays(t *testing.T) {
	_, ag, cs := setup(t, figure1, 0)
	d := ShashaSnir(ag, cs)
	// The two delay edges that make Figure 1 sequentially consistent:
	// the writes must stay ordered, and so must the reads.
	if !d.Has(0, 1) {
		t.Errorf("missing delay [write Data -> write Flag]\n%s", d)
	}
	if !d.Has(2, 3) {
		t.Errorf("missing delay [read Flag -> read Data]\n%s", d)
	}
}

func TestFigure1DelaysExact(t *testing.T) {
	_, ag, cs := setup(t, figure1, 0)
	d := ShashaSnirExact(ag, cs)
	if !d.Has(0, 1) || !d.Has(2, 3) {
		t.Errorf("exact search missing Figure 1 delays\n%s", d)
	}
}

func TestFigure4NoDelays(t *testing.T) {
	// Figure 4 of the paper: no delay constraints required because P ∪ C
	// has no critical cycles (Data is never written).
	_, ag, cs := setup(t, `
shared int Data = 0;
shared int Flag = 0;
func main() {
    local int v = 0;
    if (MYPROC == 0) {
        v = Data;    // a0
        Flag = 1;    // a1
    } else {
        v = Flag;    // a2
        v = Data;    // a3
    }
}
`, 0)
	d := ShashaSnir(ag, cs)
	if d.Size() != 0 {
		t.Errorf("expected empty delay set, got:\n%s", d)
	}
}

func TestWriteThenReadSameVar(t *testing.T) {
	// p: X=1; r=X  — if both accesses reorder, two processors can each
	// miss the other's write in a non-SC way; the delay must be kept.
	_, ag, cs := setup(t, `
shared int X;
func main() {
    X = MYPROC + 1;    // a0
    local int r = X;   // a1
}
`, 0)
	d := ShashaSnir(ag, cs)
	if !d.Has(0, 1) {
		t.Errorf("missing delay [write X -> read X]\n%s", d)
	}
}

func TestIndependentVariablesNoDelay(t *testing.T) {
	// Accesses to unrelated variables with no interleaving hazards:
	// X only written, Y only written (write-write self conflicts exist),
	// but no read observes them, so back-paths need conflicting reads.
	_, ag, cs := setup(t, `
shared int X;
shared int Y;
func main() {
    X = 1;    // a0
    Y = 2;    // a1
}
`, 0)
	d := ShashaSnir(ag, cs)
	// Back-path for [a0,a1]: a1 -C-> a1' requires a conflict partner of a1
	// that reaches a conflict partner of a0. a1 conflicts only with itself;
	// from a1, program order continues to nothing. A back-path
	// a1 -C-> a1 -P-> ... -C-> a0 does not exist (a1 has no P successor).
	if d.Has(0, 1) {
		t.Errorf("unexpected delay between writes to unrelated variables:\n%s", d)
	}
}

func TestParallelWritesNeedNoDelay(t *testing.T) {
	// p: X=p; Y=p on every processor. Any combination of final values is
	// explainable by an SC interleaving, so Shasha–Snir keeps no delay —
	// there is no read to close a cycle.
	_, ag, cs := setup(t, `
shared int X;
shared int Y;
func main() {
    X = MYPROC;    // a0
    Y = MYPROC;    // a1
}
`, 0)
	d := ShashaSnir(ag, cs)
	if d.Has(0, 1) {
		t.Errorf("writes to X and Y with no observers should not be delayed:\n%s", d)
	}
}

func TestDekkerDelays(t *testing.T) {
	// The Dekker pattern: each side writes one flag and reads the other.
	// Both [write -> read] pairs must be delayed.
	_, ag, cs := setup(t, `
shared int X;
shared int Y;
func main() {
    local int r = 0;
    if (MYPROC == 0) {
        X = 1;     // a0
        r = Y;     // a1
    } else {
        Y = 1;     // a2
        r = X;     // a3
    }
}
`, 0)
	d := ShashaSnir(ag, cs)
	if !d.Has(0, 1) || !d.Has(2, 3) {
		t.Errorf("Dekker delays missing:\n%s", d)
	}
}

func TestLoopSelfDelay(t *testing.T) {
	// A write in a loop whose address cannot be disambiguated conflicts
	// with itself; successive iterations must be ordered.
	_, ag, cs := setup(t, `
shared int A[16];
func main() {
    local int j = MYPROC;
    for (local int i = 0; i < 4; i = i + 1) {
        A[j] = i;    // a0: j unknown, self-conflicting
    }
}
`, 0)
	d := ShashaSnir(ag, cs)
	if !d.Has(0, 0) {
		t.Errorf("missing self delay for loop-carried conflicting write:\n%s", d)
	}
}

func TestOwnerComputesLoopNoSelfDelay(t *testing.T) {
	_, ag, cs := setup(t, `
shared int A[64];
func main() {
    for (local int i = 0; i < 64 / PROCS; i = i + 1) {
        A[MYPROC * (64 / PROCS) + i] = i;    // a0
    }
}
`, 8)
	d := ShashaSnir(ag, cs)
	if d.Has(0, 0) {
		t.Errorf("owner-computes loop write should not self-delay:\n%s", d)
	}
}

func TestOrientationKillsBackPath(t *testing.T) {
	// Figure 1 again, but orient the Flag conflict edge (as if a
	// precedence relation proved write-Flag happens before read-Flag):
	// the back-path for [a0,a1] needed read-Flag -> ... and the one for
	// [a2,a3] needed ... -> write-Data; orientation of both conflict
	// edges (write->read only) kills both delays.
	_, ag, cs := setup(t, figure1, 0)
	oriented := func(x, y int) bool {
		// Allow conflict traversal only from write (0,1) to read (2,3).
		return x < 2 && y >= 2 || x < 2 && y < 2 || false
	}
	d := Compute(ag, cs, Constraints{ConflictDir: oriented})
	if d.Has(2, 3) {
		t.Errorf("orientation should kill the read-side delay:\n%s", d)
	}
}

func TestRemovalKillsBackPath(t *testing.T) {
	// Removing the intermediate access that every back-path needs
	// eliminates the delay.
	_, ag, cs := setup(t, figure1, 0)
	removed := func(a, b, z int) bool { return z == 2 } // drop read Flag
	d := Compute(ag, cs, Constraints{Removed: removed})
	// Back-path for [a0,a1] was a1 -C-> a2 -P-> a3 -C-> a0.
	if d.Has(0, 1) {
		t.Errorf("removal of a2 should kill the write-side delay:\n%s", d)
	}
}

func TestPairFilter(t *testing.T) {
	_, ag, cs := setup(t, figure1, 0)
	d := Compute(ag, cs, Constraints{PairFilter: func(a, b int) bool { return false }})
	if d.Size() != 0 {
		t.Errorf("pair filter should suppress all pairs:\n%s", d)
	}
}

func TestExactNotLargerThanPoly(t *testing.T) {
	srcs := []string{
		figure1,
		`
shared int X;
shared int Y;
shared int Z;
func main() {
    X = 1;
    local int a = Y;
    Y = 2;
    local int b = Z;
    Z = 3;
    local int c = X;
}
`,
		`
shared int A[8];
event e;
func main() {
    A[MYPROC % 8] = 1;
    post(e);
    wait(e);
    local int v = A[(MYPROC + 1) % 8];
}
`,
	}
	for i, src := range srcs {
		_, ag, cs := setup(t, src, 4)
		poly := ShashaSnir(ag, cs)
		exact := ShashaSnirExact(ag, cs)
		for _, p := range exact.Pairs() {
			if !poly.Has(p.A, p.B) {
				t.Errorf("case %d: exact found [%d,%d] missing from poly (poly must over-approximate)", i, p.A, p.B)
			}
		}
	}
}

func TestSetOperations(t *testing.T) {
	fn := ir.MustBuild(`
shared int X;
func main() {
    X = 1;
    X = 2;
    X = 3;
}
`, ir.BuildOptions{})
	s1 := NewSet(fn)
	s1.Add(0, 1)
	s2 := NewSet(fn)
	s2.Add(1, 2)
	u := s1.Union(s2)
	if !u.Has(0, 1) || !u.Has(1, 2) || u.Size() != 2 {
		t.Errorf("union wrong: %s", u)
	}
	if got := u.Successors(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("successors(1) = %v, want [2]", got)
	}
	pairs := u.Pairs()
	if len(pairs) != 2 || pairs[0] != (Pair{0, 1}) {
		t.Errorf("pairs not sorted: %v", pairs)
	}
	if u.String() == "" {
		t.Error("String should render edges")
	}
}

func TestBarrierDelaysAgainstData(t *testing.T) {
	// write X ; barrier ; read X
	// D1-style pairs: the write must complete before the barrier
	// (the back-path uses the barrier self-conflict).
	_, ag, cs := setup(t, `
shared int X;
func main() {
    X = MYPROC;          // a0
    barrier;             // a1
    local int v = X;     // a2
}
`, 0)
	d := ShashaSnir(ag, cs)
	if !d.Has(0, 1) {
		t.Errorf("missing delay [write X -> barrier]:\n%s", d)
	}
	if !d.Has(1, 2) {
		t.Errorf("missing delay [barrier -> read X]:\n%s", d)
	}
}
