package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReachableFrom(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	r := g.ReachableFrom(0)
	want := []bool{true, true, true, false, false}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("reach[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

func TestReachableFromFiltered(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	r := g.ReachableFromFiltered(0, func(n int) bool { return n != 2 })
	if !r[1] || r[2] || r[3] {
		t.Errorf("filtered reach = %v, want node 2 to block the path", r)
	}
}

func TestHasEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Error("Reverse wrong")
	}
}

func TestHasPath(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.HasPath(0, 2) {
		t.Error("path 0->2 not found")
	}
	if g.HasPath(2, 0) {
		t.Error("phantom path 2->0")
	}
	// src reaches itself only via a cycle
	if g.HasPath(0, 0) {
		t.Error("0 should not reach itself without a cycle")
	}
	g.AddEdge(2, 0)
	if !g.HasPath(0, 0) {
		t.Error("0 should reach itself via cycle")
	}
}

func TestHasPathSelfLoop(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	if !g.HasPath(0, 0) {
		t.Error("self-edge should count as a path")
	}
}

func TestSCCSimple(t *testing.T) {
	// 0 <-> 1, 2 alone, 3 -> 0
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(3, 0)
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("got %d components, want 3", n)
	}
	if comp[0] != comp[1] {
		t.Error("0 and 1 should share a component")
	}
	if comp[2] == comp[0] || comp[3] == comp[0] {
		t.Error("2 and 3 should be singletons")
	}
}

func TestSCCReverseTopoOrder(t *testing.T) {
	// a -> b means comp[a] > comp[b] for Tarjan's reverse topological output.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("got %d components, want 3", n)
	}
	if !(comp[0] > comp[1] && comp[1] > comp[2]) {
		t.Errorf("components not in reverse topological order: %v", comp)
	}
}

func TestSCCBigCycle(t *testing.T) {
	const n = 1000
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	comp, nc := g.SCC()
	if nc != 1 {
		t.Fatalf("got %d components, want 1", nc)
	}
	for i := 1; i < n; i++ {
		if comp[i] != comp[0] {
			t.Fatalf("node %d in different component", i)
		}
	}
}

func TestTopo(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	order, ok := g.Topo()
	if !ok {
		t.Fatal("acyclic graph reported as cyclic")
	}
	pos := make([]int, 4)
	for i, u := range order {
		pos[u] = i
	}
	for u, vs := range g.Adj {
		for _, v := range vs {
			if pos[u] >= pos[v] {
				t.Errorf("edge %d->%d violates topo order", u, v)
			}
		}
	}
}

func TestTopoCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, ok := g.Topo(); ok {
		t.Error("cycle not detected")
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tc := g.TransitiveClosure()
	if !tc[0][2] {
		t.Error("0 should reach 2")
	}
	if tc[2][0] {
		t.Error("2 should not reach 0")
	}
	if !tc[1][1] {
		t.Error("nodes trivially reach themselves in TransitiveClosure")
	}
}

// Property: SCC component count equals number of distinct components, and
// two nodes share a component iff each reaches the other.
func TestSCCAgainstReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := New(n)
		for e := 0; e < rng.Intn(2*n); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		comp, _ := g.SCC()
		tc := g.TransitiveClosure()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				mutual := tc[u][v] && tc[v][u]
				if (comp[u] == comp[v]) != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Topo succeeds iff the graph has no SCC of size > 1 and no self-loop.
func TestTopoAgainstSCC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		g := New(n)
		for e := 0; e < rng.Intn(2*n); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		_, ok := g.Topo()
		comp, _ := g.SCC()
		sizes := map[int]int{}
		for _, c := range comp {
			sizes[c]++
		}
		cyclic := false
		for _, sz := range sizes {
			if sz > 1 {
				cyclic = true
			}
		}
		for u := 0; u < n; u++ {
			if g.HasEdge(u, u) {
				cyclic = true
			}
		}
		return ok == !cyclic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
