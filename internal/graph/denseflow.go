package graph

import "math/bits"

// DenseFlow is FlowDom's sibling for dense graphs: the same
// "reachable while avoiding one vertex" query family, but over a bitset
// adjacency matrix. Frontier expansion ORs whole adjacency rows — 64 edges
// per word operation — so a sweep costs O(|visited| * n/64) words instead
// of O(E) edge visits, which wins once the graph holds more than ~16 edges
// per node word. There is no dominator tree here: the exact fallback for
// inconclusive first-visit-tree screens is AvoidReach, a second masked BFS,
// which on a dense matrix costs no more than the first one did.
//
// Not safe for concurrent use; give each worker its own.
type DenseFlow struct {
	out *BitMatrix
	n   int   // node count; the virtual BFS root has id n
	cut int32 // node whose in-edges are deleted for the current source

	visited []uint64
	order   []int32 // visited nodes in BFS discovery order
	parent  []int32 // BFS-tree parent of each visited node (root for seeds)

	avoid []uint64 // scratch visited set for AvoidReach

	treeReady    bool
	ttin, ttout  []int32
	tHead, tNext []int32
	stack        []int32
}

// NewDenseFlow returns a scratch engine over the dense adjacency m.
func NewDenseFlow(m *BitMatrix) *DenseFlow {
	n := m.N
	return &DenseFlow{
		out: m, n: n,
		visited: make([]uint64, WordsFor(n)),
		avoid:   make([]uint64, WordsFor(n)),
		parent:  make([]int32, n),
		ttin:    make([]int32, n+1), ttout: make([]int32, n+1),
		tHead: make([]int32, n+1), tNext: make([]int32, n+1),
	}
}

// Reach runs the BFS for one source: from seeds, with cut's in-edges
// deleted (cut itself may be a seed, and is then expanded). Matches
// FlowDom.Reach except for neighbor visit order, which no caller may
// depend on: visited sets are order-independent and both engines answer
// queries exactly.
func (f *DenseFlow) Reach(seeds []int32, cut int) {
	f.order = f.order[:0]
	f.treeReady = false
	for i := range f.visited {
		f.visited[i] = 0
	}
	f.cut = int32(cut)
	root := int32(f.n)
	for _, s := range seeds {
		if BitGet(f.visited, int(s)) {
			continue
		}
		BitSet(f.visited, int(s))
		f.parent[s] = root
		f.order = append(f.order, s)
	}
	cw, cm := cut>>6, uint64(1)<<(uint(cut)&63)
	for i := 0; i < len(f.order); i++ {
		u := f.order[i]
		row := f.out.Row(int(u))
		for wi := range f.visited {
			nw := row[wi] &^ f.visited[wi]
			if wi == cw {
				nw &^= cm
			}
			if nw == 0 {
				continue
			}
			f.visited[wi] |= nw
			for ; nw != 0; nw &= nw - 1 {
				v := int32(wi<<6 + bits.TrailingZeros64(nw))
				f.parent[v] = u
				f.order = append(f.order, v)
			}
		}
	}
}

// Order returns the visited nodes of the current source in discovery
// order, as a shared slice valid until the next Reach.
func (f *DenseFlow) Order() []int32 { return f.order }

// Visited reports whether v was reached for the current source.
func (f *DenseFlow) Visited(v int) bool { return BitGet(f.visited, v) }

// VisitedRow returns the visited set as a shared bitset row.
func (f *DenseFlow) VisitedRow() []uint64 { return f.visited }

// TreeAncestor reports whether a is an ancestor of y in the BFS
// first-visit tree of the current source (a == y reports true). Both must
// be visited. False proves y's first-visit path avoids a — an exact
// positive; true is inconclusive, so callers fall back to AvoidReach.
func (f *DenseFlow) TreeAncestor(a, y int) bool {
	if !f.treeReady {
		f.buildTree()
	}
	return f.ttin[a] <= f.ttin[y] && f.ttout[y] <= f.ttout[a]
}

func (f *DenseFlow) buildTree() {
	f.treeReady = true
	root := int32(f.n)
	f.tHead[root] = -1
	for _, v := range f.order {
		f.tHead[v] = -1
	}
	for i := len(f.order) - 1; i >= 0; i-- {
		v := f.order[i]
		p := f.parent[v]
		f.tNext[v] = f.tHead[p]
		f.tHead[p] = v
	}
	t := int32(0)
	f.stack = append(f.stack[:0], root)
	for len(f.stack) > 0 {
		v := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		if v < 0 {
			f.ttout[-(v + 1)] = t
			t++
			continue
		}
		f.ttin[v] = t
		t++
		f.stack = append(f.stack, -(v + 1))
		for c := f.tHead[v]; c != -1; c = f.tNext[c] {
			f.stack = append(f.stack, c)
		}
	}
}

// AvoidReach reports whether some node of the targets bitset is reachable
// from seeds when BOTH cut and avoid have their in-edges deleted (either
// may appear as a seed; a seed equal to cut is still expanded, matching
// the per-pair reference's treatment of the pair's own target b, while a
// seed equal to avoid must be excluded by the caller). A target bit is
// accepted the moment it is generated — before the avoid/cut interior
// filter — mirroring the reference search, which tests "is this a
// conflict predecessor of a" before discarding a node as interior.
func (f *DenseFlow) AvoidReach(seeds []int32, cut, avoid int, targets []uint64) bool {
	vis := f.avoid
	for i := range vis {
		vis[i] = 0
	}
	st := f.stack[:0]
	for _, s := range seeds {
		if BitGet(targets, int(s)) {
			f.stack = st
			return true
		}
		if int(s) == avoid {
			continue
		}
		if !BitGet(vis, int(s)) {
			BitSet(vis, int(s))
			st = append(st, s)
		}
	}
	cw, cm := cut>>6, uint64(1)<<(uint(cut)&63)
	aw, am := avoid>>6, uint64(1)<<(uint(avoid)&63)
	for len(st) > 0 {
		u := st[len(st)-1]
		st = st[:len(st)-1]
		row := f.out.Row(int(u))
		for wi := range vis {
			nw := row[wi] &^ vis[wi]
			if nw == 0 {
				continue
			}
			if nw&targets[wi] != 0 {
				f.stack = st
				return true
			}
			if wi == int(cw) {
				nw &^= cm
			}
			if wi == int(aw) {
				nw &^= am
			}
			vis[wi] |= nw
			for ; nw != 0; nw &= nw - 1 {
				st = append(st, int32(wi<<6+bits.TrailingZeros64(nw)))
			}
		}
	}
	f.stack = st
	return false
}
