package graph

// CSR is a frozen compressed-sparse-row adjacency: the out-edges of node u
// are Dst[Off[u]:Off[u+1]]. Building it once and traversing flat int32
// slices keeps the hot analysis loops free of per-node allocation and
// pointer chasing.
type CSR struct {
	N   int
	Off []int32
	Dst []int32
}

// BuildCSR constructs a CSR from a degree pass and a fill pass: degree(u)
// must return the out-degree of u, and fill(u, out) must write exactly
// that many destinations into out.
func BuildCSR(n int, degree func(u int) int, fill func(u int, out []int32)) *CSR {
	c := &CSR{N: n, Off: make([]int32, n+1)}
	for u := 0; u < n; u++ {
		c.Off[u+1] = c.Off[u] + int32(degree(u))
	}
	c.Dst = make([]int32, c.Off[n])
	for u := 0; u < n; u++ {
		fill(u, c.Dst[c.Off[u]:c.Off[u+1]])
	}
	return c
}

// FromDigraph lowers an adjacency-list digraph to CSR form.
func FromDigraph(g *Digraph) *CSR {
	return BuildCSR(g.N,
		func(u int) int { return len(g.Adj[u]) },
		func(u int, out []int32) {
			for i, v := range g.Adj[u] {
				out[i] = int32(v)
			}
		})
}

// Out returns the out-neighbors of u.
func (c *CSR) Out(u int) []int32 { return c.Dst[c.Off[u]:c.Off[u+1]] }

// Reverse returns the transpose CSR (every edge u -> v becomes v -> u).
func (c *CSR) Reverse() *CSR {
	r := &CSR{N: c.N, Off: make([]int32, c.N+1)}
	for _, v := range c.Dst {
		r.Off[v+1]++
	}
	for u := 0; u < c.N; u++ {
		r.Off[u+1] += r.Off[u]
	}
	r.Dst = make([]int32, len(c.Dst))
	pos := make([]int32, c.N)
	copy(pos, r.Off[:c.N])
	for u := 0; u < c.N; u++ {
		for _, v := range c.Out(u) {
			r.Dst[pos[v]] = int32(u)
			pos[v]++
		}
	}
	return r
}
