package graph

import "math/bits"

// Rows is a read-only row-indexed bit relation over n ids. A *BitMatrix
// is the per-access (materialized) implementation; ClassRows shares one
// physical row among every member of an equivalence class, so consumers
// that only read rows run condensed without knowing the backing.
type Rows interface {
	// Row returns row i as a shared word slice; callers must not modify it.
	Row(i int) []uint64
}

// TransposeRows transposes either Rows backing. For a ClassRows the
// transpose is again class-shared (see ClassRows.Transpose); for a
// BitMatrix it materializes the per-access transpose.
func TransposeRows(r Rows) Rows {
	switch m := r.(type) {
	case *BitMatrix:
		return m.Transpose()
	case *ClassRows:
		return m.Transpose()
	}
	panic("graph: unknown Rows backing")
}

// ClassRows is an n x n bit relation condensed by an equivalence
// partition: every member of a class shares one physical row. The
// backing assumes the partition is a congruence on both sides — bit j of
// a class row depends only on ClassOf[j] — which is exactly the contract
// of the analysis partitions that produce it (conflict groups,
// R-equivalence classes, co-phase regions). Transpose relies on the
// column half of that contract; Row does not.
type ClassRows struct {
	ClassOf  []int32    // access -> class id
	ClassRow [][]uint64 // class id -> shared n-bit row
	n        int
	rep      []int32    // class id -> first member (built lazily)
	mask     [][]uint64 // class id -> member bitset (built lazily)
}

// NewClassRows wraps a partition and its per-class rows. rows[c] must
// have WordsFor(n) words.
func NewClassRows(classOf []int32, rows [][]uint64, n int) *ClassRows {
	return &ClassRows{ClassOf: classOf, ClassRow: rows, n: n}
}

// N returns the number of ids.
func (m *ClassRows) N() int { return m.n }

// Row returns the shared row of i's class.
func (m *ClassRows) Row(i int) []uint64 { return m.ClassRow[m.ClassOf[i]] }

// Has reports bit (i, j).
func (m *ClassRows) Has(i, j int) bool { return BitGet(m.Row(i), j) }

// Count returns the number of set (i, j) pairs, expanded: each class row
// counts once per member.
func (m *ClassRows) Count() int {
	sizes := make([]int, len(m.ClassRow))
	for _, c := range m.ClassOf {
		sizes[c]++
	}
	total := 0
	for c, row := range m.ClassRow {
		if sizes[c] == 0 {
			continue
		}
		pc := 0
		for _, w := range row {
			pc += bits.OnesCount64(w)
		}
		total += pc * sizes[c]
	}
	return total
}

// members builds the lazy per-class representative and member masks.
func (m *ClassRows) members() {
	if m.mask != nil {
		return
	}
	w := WordsFor(m.n)
	m.rep = make([]int32, len(m.ClassRow))
	for c := range m.rep {
		m.rep[c] = -1
	}
	m.mask = make([][]uint64, len(m.ClassRow))
	for i, c := range m.ClassOf {
		if m.mask[c] == nil {
			m.mask[c] = make([]uint64, w)
			m.rep[c] = int32(i)
		}
		BitSet(m.mask[c], i)
	}
}

// Transpose returns the transposed relation over the same partition:
// row j of the result has bit i set iff bit j of row i is set. By the
// column congruence, bit j of ClassRow[c] is constant over j's class, so
// the transposed row of class c is the union of the member masks of
// every class whose row contains c's representative.
func (m *ClassRows) Transpose() *ClassRows {
	m.members()
	w := WordsFor(m.n)
	nc := len(m.ClassRow)
	trows := make([][]uint64, nc)
	for c := 0; c < nc; c++ {
		tr := make([]uint64, w)
		if m.rep[c] >= 0 {
			j := int(m.rep[c])
			for c2 := 0; c2 < nc; c2++ {
				if m.mask[c2] != nil && BitGet(m.ClassRow[c2], j) {
					for wi, wd := range m.mask[c2] {
						tr[wi] |= wd
					}
				}
			}
		}
		trows[c] = tr
	}
	return &ClassRows{ClassOf: m.ClassOf, ClassRow: trows, n: m.n}
}
