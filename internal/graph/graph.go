// Package graph provides the small directed-graph toolkit used by the
// analyses: reachability, strongly connected components, topological order,
// and transitive closure over dense integer-indexed node sets.
package graph

// Digraph is a directed graph over nodes 0..N-1 with adjacency lists.
type Digraph struct {
	N   int
	Adj [][]int
}

// New returns an empty digraph with n nodes.
func New(n int) *Digraph {
	return &Digraph{N: n, Adj: make([][]int, n)}
}

// AddEdge inserts the edge u -> v. Duplicate edges are allowed and harmless
// for the algorithms here.
func (g *Digraph) AddEdge(u, v int) {
	g.Adj[u] = append(g.Adj[u], v)
}

// HasEdge reports whether the edge u -> v is present.
func (g *Digraph) HasEdge(u, v int) bool {
	for _, w := range g.Adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Reverse returns the transpose graph.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.N)
	for u, vs := range g.Adj {
		for _, v := range vs {
			r.AddEdge(v, u)
		}
	}
	return r
}

// ReachableFrom returns the set of nodes reachable from src (including src)
// as a boolean slice.
func (g *Digraph) ReachableFrom(src int) []bool {
	seen := make([]bool, g.N)
	g.reach(src, seen, nil)
	return seen
}

// ReachableFromFiltered is ReachableFrom restricted to nodes where
// allowed(n) is true; src itself is always visited. Edges through
// disallowed nodes are not followed.
func (g *Digraph) ReachableFromFiltered(src int, allowed func(int) bool) []bool {
	seen := make([]bool, g.N)
	g.reach(src, seen, allowed)
	return seen
}

func (g *Digraph) reach(src int, seen []bool, allowed func(int) bool) {
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Adj[u] {
			if seen[v] {
				continue
			}
			if allowed != nil && !allowed(v) {
				continue
			}
			seen[v] = true
			stack = append(stack, v)
		}
	}
}

// TransitiveClosure returns reach[u][v] = true iff v is reachable from u
// (u reaches itself only via a cycle or a self-edge... by convention here,
// reach[u][u] is true always, since every node trivially reaches itself).
func (g *Digraph) TransitiveClosure() [][]bool {
	reach := make([][]bool, g.N)
	for u := 0; u < g.N; u++ {
		reach[u] = g.ReachableFrom(u)
	}
	return reach
}

// SCC computes strongly connected components with Tarjan's algorithm
// (iterative). It returns comp, the component index of each node, and the
// number of components. Component indices are in reverse topological order
// of the condensation (a component's index is greater than those of
// components it can reach).
func (g *Digraph) SCC() (comp []int, ncomp int) {
	const unvisited = -1
	n := g.N
	comp = make([]int, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	type frame struct {
		v  int
		ei int
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.Adj[f.v]) {
				w := g.Adj[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// finish v
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	// Tarjan emits components in reverse topological order already.
	return comp, ncomp
}

// Topo returns a topological order of nodes if the graph is acyclic, or
// ok=false if it has a cycle.
func (g *Digraph) Topo() (order []int, ok bool) {
	indeg := make([]int, g.N)
	for _, vs := range g.Adj {
		for _, v := range vs {
			indeg[v]++
		}
	}
	var queue []int
	for u := 0; u < g.N; u++ {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.Adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return order, len(order) == g.N
}

// HasPath reports whether dst is reachable from src by a path of length >= 1
// (src itself counts only if it lies on a cycle or has a self-edge).
func (g *Digraph) HasPath(src, dst int) bool {
	seen := make([]bool, g.N)
	stack := []int{}
	for _, v := range g.Adj[src] {
		if v == dst {
			return true
		}
		if !seen[v] {
			seen[v] = true
			stack = append(stack, v)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Adj[u] {
			if v == dst {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}
