package graph

import "math/bits"

// WordsFor returns the number of 64-bit words needed for n bits.
func WordsFor(n int) int { return (n + 63) / 64 }

// BitMatrix is a dense n x n bit relation stored as n rows of w words.
// Row operations are word-parallel: one OR or AND covers 64 columns.
type BitMatrix struct {
	N int // rows (and columns)
	W int // words per row
	b []uint64
}

// NewBitMatrix returns an empty n x n matrix.
func NewBitMatrix(n int) *BitMatrix {
	w := WordsFor(n)
	return &BitMatrix{N: n, W: w, b: make([]uint64, n*w)}
}

// Row returns row i as a shared word slice; callers must not grow it.
func (m *BitMatrix) Row(i int) []uint64 { return m.b[i*m.W : (i+1)*m.W] }

// Words returns the whole backing word slice (rows concatenated), for
// word-parallel whole-matrix operations like unions.
func (m *BitMatrix) Words() []uint64 { return m.b }

// Set sets bit (i, j).
func (m *BitMatrix) Set(i, j int) { m.b[i*m.W+j>>6] |= 1 << (uint(j) & 63) }

// Has reports bit (i, j).
func (m *BitMatrix) Has(i, j int) bool {
	return m.b[i*m.W+j>>6]&(1<<(uint(j)&63)) != 0
}

// OrRow ORs row src into row dst and reports whether dst changed.
func (m *BitMatrix) OrRow(dst, src int) bool {
	d := m.Row(dst)
	s := m.Row(src)
	changed := false
	for i, w := range s {
		if nw := d[i] | w; nw != d[i] {
			d[i] = nw
			changed = true
		}
	}
	return changed
}

// Count returns the number of set bits in the whole matrix.
func (m *BitMatrix) Count() int {
	c := 0
	for _, w := range m.b {
		c += bits.OnesCount64(w)
	}
	return c
}

// RowCount returns the number of set bits in row i.
func (m *BitMatrix) RowCount(i int) int {
	c := 0
	for _, w := range m.Row(i) {
		c += bits.OnesCount64(w)
	}
	return c
}

// BitGet reports bit j of a word-slice row.
func BitGet(row []uint64, j int) bool {
	return row[j>>6]&(1<<(uint(j)&63)) != 0
}

// BitSet sets bit j of a word-slice row.
func BitSet(row []uint64, j int) { row[j>>6] |= 1 << (uint(j) & 63) }

// BitClear clears bit j of the row.
func BitClear(row []uint64, j int) { row[j>>6] &^= 1 << (uint(j) & 63) }

// AndAny reports whether two rows share a set bit.
func AndAny(a, b []uint64) bool {
	for i, w := range a {
		if w&b[i] != 0 {
			return true
		}
	}
	return false
}
