package graph

import (
	"math/rand"
	"testing"
)

func randomDigraph(rng *rand.Rand, n int, p float64) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func digraphIter(g *Digraph) func(u int, visit func(v int32)) {
	return func(u int, visit func(v int32)) {
		for _, v := range g.Adj[u] {
			visit(int32(v))
		}
	}
}

// TestCondenseMatchesSCC checks Condense against the list-based Tarjan and
// verifies the structural invariants of the condensation: component
// agreement (up to renaming both emit reverse topological indices, so they
// must match exactly), member partitioning, and DAG edges pointing from
// higher to lower component indices.
func TestCondenseMatchesSCC(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		g := randomDigraph(rng, n, []float64{0.02, 0.05, 0.1, 0.3}[rng.Intn(4)])
		c := Condense(n, digraphIter(g))
		comp, ncomp := g.SCC()
		if c.NComp != ncomp {
			t.Fatalf("trial %d: NComp %d, SCC says %d", trial, c.NComp, ncomp)
		}
		for v := 0; v < n; v++ {
			if int(c.Comp[v]) != comp[v] {
				t.Fatalf("trial %d: node %d in comp %d, SCC says %d", trial, v, c.Comp[v], comp[v])
			}
		}
		seen := 0
		for cc, ms := range c.Members {
			for i, v := range ms {
				if i > 0 && ms[i-1] >= v {
					t.Fatalf("trial %d: comp %d members not ascending: %v", trial, cc, ms)
				}
				if int(c.Comp[v]) != cc {
					t.Fatalf("trial %d: member %d of comp %d has Comp %d", trial, v, cc, c.Comp[v])
				}
				seen++
			}
		}
		if seen != n {
			t.Fatalf("trial %d: members cover %d of %d nodes", trial, seen, n)
		}
		for cu, succs := range c.Adj {
			for _, cv := range succs {
				if int(cv) >= cu {
					t.Fatalf("trial %d: DAG edge %d -> %d not descending", trial, cu, cv)
				}
			}
		}
	}
}

// TestReachRowsMatchesTransitiveClosure checks the condensation-DP closure
// against the per-source BFS closure, including the length >= 1 convention
// (a node reaches itself only through a cycle or self-edge).
func TestReachRowsMatchesTransitiveClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		g := randomDigraph(rng, n, []float64{0.02, 0.05, 0.1, 0.3}[rng.Intn(4)])
		c := Condense(n, digraphIter(g))
		got := c.ReachRows(n, digraphIter(g))
		for u := 0; u < n; u++ {
			want := make([]bool, n)
			for _, v := range g.Adj[u] {
				if !want[v] {
					want[v] = true
				}
			}
			stack := []int{}
			for v, ok := range want {
				if ok {
					stack = append(stack, v)
				}
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, v := range g.Adj[x] {
					if !want[v] {
						want[v] = true
						stack = append(stack, v)
					}
				}
			}
			for v := 0; v < n; v++ {
				if got.Has(u, v) != want[v] {
					t.Fatalf("trial %d: reach(%d, %d) = %v, want %v", trial, u, v, got.Has(u, v), want[v])
				}
			}
		}
	}
}

// TestTranspose checks the 64x64 block transpose against per-bit flipping
// at sizes around the word boundaries.
func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 7, 63, 64, 65, 100, 127, 128, 130, 200} {
		m := NewBitMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Intn(3) == 0 {
					m.Set(i, j)
				}
			}
		}
		tr := m.Transpose()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if tr.Has(j, i) != m.Has(i, j) {
					t.Fatalf("n=%d: transpose(%d,%d) mismatch", n, j, i)
				}
			}
		}
	}
}
