package graph

import (
	"math/rand"
	"testing"
)

// bruteAvoid computes reachability from seeds with cut's in-edges deleted
// and the vertex `avoid` removed entirely (seeds equal to avoid dropped).
func bruteAvoid(g *Digraph, seeds []int32, cut, avoid int) []bool {
	seen := make([]bool, g.N)
	var stack []int
	for _, s := range seeds {
		if int(s) == avoid || seen[s] {
			continue
		}
		seen[s] = true
		stack = append(stack, int(s))
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Adj[u] {
			if v == cut || v == avoid || seen[v] {
				continue
			}
			seen[v] = true
			stack = append(stack, v)
		}
	}
	return seen
}

// TestFlowDomMatchesBruteForce checks the dominator-based formulation of
// "reachable avoiding one vertex" against direct BFS with the vertex
// removed, over random graphs, seed sets, cuts, and avoided vertices.
func TestFlowDomMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(14)
		g := New(n)
		edges := rng.Intn(3 * n)
		for e := 0; e < edges; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		fd := NewFlowDom(FromDigraph(g))
		for srcTrial := 0; srcTrial < 4; srcTrial++ {
			var seeds []int32
			for len(seeds) == 0 {
				for v := 0; v < n; v++ {
					if rng.Intn(3) == 0 {
						seeds = append(seeds, int32(v))
					}
				}
			}
			cut := rng.Intn(n)
			fd.Reach(seeds, cut)
			plain := bruteAvoid(g, seeds, cut, -1)
			for v := 0; v < n; v++ {
				if fd.Visited(v) != plain[v] {
					t.Fatalf("trial %d: Visited(%d) = %v, brute = %v", trial, v, fd.Visited(v), plain[v])
				}
			}
			for avoid := 0; avoid < n; avoid++ {
				want := bruteAvoid(g, seeds, cut, avoid)
				for y := 0; y < n; y++ {
					if y == avoid || !fd.Visited(y) {
						continue
					}
					got := true // reachable avoiding `avoid`?
					if fd.Visited(avoid) && fd.DomAncestor(avoid, y) {
						got = false
					}
					if got != want[y] {
						t.Fatalf("trial %d seeds %v cut %d: reach(%d) avoiding %d = %v, brute = %v",
							trial, seeds, cut, y, avoid, got, want[y])
					}
				}
			}
		}
	}
}
