package graph

// Condensation is the SCC quotient of a directed graph: Comp maps each node
// to its component, components are numbered in reverse topological order
// (every edge of the condensation DAG goes from a higher component index to
// a lower one, matching Tarjan's emission order), Members lists each
// component's nodes in ascending node order, and Adj is the deduplicated
// condensation DAG adjacency.
//
// The regionized delay-set engine leans on one structural fact: a back-path
// for the program-order pair (a, b) is a closed mixed-graph walk through a
// and b, so both endpoints and every node of the walk lie in a single
// strongly connected component. Condensing the mixed graph therefore
// partitions the analysis exactly — cross-component pairs have no back-path,
// and same-component searches never need to leave the component.
type Condensation struct {
	Comp    []int32
	NComp   int
	Members [][]int32
	Adj     [][]int32
}

// Condense computes the SCC condensation of the graph whose out-edges are
// produced by out(u, visit). The iterator form lets callers condense graphs
// that exist only as bitset rows or CSR slices without materializing an
// adjacency list.
func Condense(n int, out func(u int, visit func(v int32))) *Condensation {
	c := &Condensation{Comp: make([]int32, n)}
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		c.Comp[i] = unvisited
	}
	// Iterative Tarjan. Out-edges of the frame's node are materialized once
	// into a shared arena when the frame is pushed, so the iterator is
	// invoked exactly once per node.
	var stack []int32
	arena := make([]int32, 0, n)
	type frame struct {
		v        int32
		ei, eend int32
	}
	var frames []frame
	next := int32(0)
	push := func(v int32) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		start := int32(len(arena))
		out(int(v), func(w int32) { arena = append(arena, w) })
		frames = append(frames, frame{v: v, ei: start, eend: int32(len(arena))})
	}
	for s := 0; s < n; s++ {
		if index[s] != unvisited {
			continue
		}
		push(int32(s))
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < f.eend {
				w := arena[f.ei]
				f.ei++
				if index[w] == unvisited {
					push(w)
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					c.Comp[w] = int32(c.NComp)
					if w == v {
						break
					}
				}
				c.NComp++
			}
		}
	}
	c.Members = make([][]int32, c.NComp)
	counts := make([]int32, c.NComp)
	for _, cc := range c.Comp {
		counts[cc]++
	}
	for i, cnt := range counts {
		c.Members[i] = make([]int32, 0, cnt)
	}
	for v := 0; v < n; v++ {
		cc := c.Comp[v]
		c.Members[cc] = append(c.Members[cc], int32(v))
	}
	// Condensation DAG, deduplicated with an epoch-stamped mark.
	c.Adj = make([][]int32, c.NComp)
	mark := make([]int32, c.NComp)
	for i := range mark {
		mark[i] = -1
	}
	for u := 0; u < n; u++ {
		cu := c.Comp[u]
		out(u, func(w int32) {
			cw := c.Comp[w]
			if cw != cu && mark[cw] != cu {
				mark[cw] = cu
				c.Adj[cu] = append(c.Adj[cu], cw)
			}
		})
	}
	return c
}

// ReachRows computes the length->=1 reachability relation of the condensed
// graph as one bitset row per node: row(u) bit v set iff some path of at
// least one edge leads u to v. All members of one component share row
// content, and the condensation DAG is processed in topological order
// (ascending component index = reverse Tarjan order visits successors
// first), so the whole closure costs O(E_dag * n/64) word operations plus
// one row copy per node — not the O(n*E) of per-source BFS.
func (c *Condensation) ReachRows(n int, out func(u int, visit func(v int32))) *BitMatrix {
	w := WordsFor(n)
	compRow := make([][]uint64, c.NComp)
	// Ascending component index: successors of a component always carry a
	// smaller index, so their rows are complete when the component is
	// processed.
	for cc := 0; cc < c.NComp; cc++ {
		row := make([]uint64, w)
		cyclic := len(c.Members[cc]) > 1
		if !cyclic {
			// Single-node component: cyclic only via a self-edge.
			v := c.Members[cc][0]
			out(int(v), func(dst int32) {
				if dst == v {
					cyclic = true
				}
			})
		}
		if cyclic {
			for _, v := range c.Members[cc] {
				BitSet(row, int(v))
			}
		}
		for _, sc := range c.Adj[cc] {
			// Transitive skip: the invariant "row holds a member bit of sc
			// => row already holds Members[sc] and compRow[sc]" follows by
			// induction on ascending component order, since bits only enter
			// a row paired with their component's full closure. Direct
			// edges shadowed by longer paths then cost one BitGet instead
			// of a row OR, which on program-order-shaped inputs removes
			// almost all of the merge work.
			if BitGet(row, int(c.Members[sc][0])) {
				continue
			}
			for _, v := range c.Members[sc] {
				BitSet(row, int(v))
			}
			sr := compRow[sc]
			for i := range row {
				row[i] |= sr[i]
			}
		}
		compRow[cc] = row
	}
	m := NewBitMatrix(n)
	for v := 0; v < n; v++ {
		copy(m.Row(v), compRow[c.Comp[v]])
	}
	return m
}

// Transpose returns the transposed matrix, built with a 64x64 block
// transpose: each word-aligned block is flipped with the classical
// masked-swap network, so the cost is O(n^2/64 * log 64) word operations
// instead of n^2 single-bit probes.
func (m *BitMatrix) Transpose() *BitMatrix {
	t := NewBitMatrix(m.N)
	var blk [64]uint64
	for bi := 0; bi < m.N; bi += 64 {
		rows := m.N - bi
		if rows > 64 {
			rows = 64
		}
		for bj := 0; bj < m.N; bj += 64 {
			for r := 0; r < rows; r++ {
				blk[r] = m.b[(bi+r)*m.W+bj>>6]
			}
			for r := rows; r < 64; r++ {
				blk[r] = 0
			}
			transpose64(&blk)
			cols := m.N - bj
			if cols > 64 {
				cols = 64
			}
			for c := 0; c < cols; c++ {
				t.b[(bj+c)*t.W+bi>>6] = blk[c]
			}
		}
	}
	return t
}

// transpose64 transposes a 64x64 bit block in place (Hacker's Delight
// masked-swap network: exchange sub-blocks of width 32, 16, ..., 1).
func transpose64(a *[64]uint64) {
	mask := uint64(0x00000000FFFFFFFF)
	for shift := 32; shift > 0; shift >>= 1 {
		for i := 0; i < 64; i = (i + shift + 1) &^ shift {
			x := (a[i] >> uint(shift)) ^ a[i+shift]
			x &= mask
			a[i] ^= x << uint(shift)
			a[i+shift] ^= x
		}
		mask ^= mask << uint(shift>>1)
	}
}
