package graph

// FlowDom answers batched "reachable while avoiding one vertex" queries
// over a CSR graph. A call to Reach(seeds, cut) runs a BFS of the virtual
// flowgraph whose root has an edge to every seed and whose edges into
// `cut` are deleted (cut itself may still be a seed). DomAncestor then
// uses the dominator tree of that flowgraph: a vertex y is reachable from
// the seeds without touching vertex a (a != y) exactly when y is visited
// and a does not dominate y — every dominator of y lies on every
// root-to-y path, and conversely a first-visit path avoids any
// non-dominator.
//
// The struct is a reusable scratch: one allocation amortized over many
// sources. It is not safe for concurrent use; give each worker its own.
type FlowDom struct {
	csr *CSR
	n   int   // node count; the virtual root has id n
	cut int32 // node whose in-edges are deleted for the current source

	epoch   int32
	mark    []int32  // mark[v] == epoch: v visited for the current source
	order   []int32  // visited nodes in BFS discovery order
	visited []uint64 // bitset of visited nodes
	seeds   []int32  // deduplicated seeds of the current source
	parent  []int32  // BFS-tree parent of each visited node (root for seeds)

	// First-visit-tree state, built lazily by TreeAncestor.
	treeReady    bool
	ttin, ttout  []int32
	tHead, tNext []int32

	// Dominator state, built lazily by Doms for the current source.
	domsReady            bool
	idom                 []int32 // immediate dominator (root's is itself)
	bnum                 []int32 // BFS number: root 0, order[i] = i+1
	tin, tout            []int32 // dominator-tree DFS intervals
	childHead, childNext []int32 // dominator-tree children lists
	stack                []int32
}

// NewFlowDom returns a scratch engine for the given graph.
func NewFlowDom(csr *CSR) *FlowDom {
	n := csr.N
	return &FlowDom{
		csr: csr, n: n,
		mark:    make([]int32, n),
		visited: make([]uint64, WordsFor(n)),
		parent:  make([]int32, n),
		ttin:    make([]int32, n+1), ttout: make([]int32, n+1),
		tHead: make([]int32, n+1), tNext: make([]int32, n+1),
		idom: make([]int32, n+1), bnum: make([]int32, n+1),
		tin: make([]int32, n+1), tout: make([]int32, n+1),
		childHead: make([]int32, n+1), childNext: make([]int32, n+1),
	}
}

// Reach prepares queries for one source: BFS from seeds with cut's
// in-edges deleted. Pass cut < 0 to delete nothing.
func (f *FlowDom) Reach(seeds []int32, cut int) {
	f.epoch++
	f.cut = int32(cut)
	f.order = f.order[:0]
	f.seeds = f.seeds[:0]
	f.domsReady = false
	f.treeReady = false
	for i := range f.visited {
		f.visited[i] = 0
	}
	root := int32(f.n)
	for _, s := range seeds {
		if f.mark[s] == f.epoch {
			continue
		}
		f.mark[s] = f.epoch
		BitSet(f.visited, int(s))
		f.parent[s] = root
		f.order = append(f.order, s)
		f.seeds = append(f.seeds, s)
	}
	for i := 0; i < len(f.order); i++ {
		u := f.order[i]
		for _, v := range f.csr.Out(int(u)) {
			if v == f.cut || f.mark[v] == f.epoch {
				continue
			}
			f.mark[v] = f.epoch
			BitSet(f.visited, int(v))
			f.parent[v] = u
			f.order = append(f.order, v)
		}
	}
}

// Order returns the visited nodes of the current source in BFS discovery
// order, as a shared slice valid until the next Reach.
func (f *FlowDom) Order() []int32 { return f.order }

// TreeAncestor reports whether a is an ancestor of y in the BFS
// first-visit tree of the current source (a == y reports true). Both must
// be visited. A false answer proves y's first-visit path avoids a — an
// exact positive witness that is much cheaper than the dominator tree; a
// true answer is inconclusive (some other path may still avoid a), so
// callers fall back to DomAncestor.
func (f *FlowDom) TreeAncestor(a, y int) bool {
	if !f.treeReady {
		f.buildTree()
	}
	return f.ttin[a] <= f.ttin[y] && f.ttout[y] <= f.ttout[a]
}

// buildTree numbers the BFS first-visit tree with entry/exit intervals.
func (f *FlowDom) buildTree() {
	f.treeReady = true
	root := int32(f.n)
	f.tHead[root] = -1
	for _, v := range f.order {
		f.tHead[v] = -1
	}
	for i := len(f.order) - 1; i >= 0; i-- {
		v := f.order[i]
		p := f.parent[v]
		f.tNext[v] = f.tHead[p]
		f.tHead[p] = v
	}
	t := int32(0)
	f.stack = append(f.stack[:0], root)
	for len(f.stack) > 0 {
		v := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		if v < 0 {
			f.ttout[-(v + 1)] = t
			t++
			continue
		}
		f.ttin[v] = t
		t++
		f.stack = append(f.stack, -(v + 1))
		for c := f.tHead[v]; c != -1; c = f.tNext[c] {
			f.stack = append(f.stack, c)
		}
	}
}

// TreeTimes exposes the first-visit tree's DFS interval numbering for the
// current source, building the tree on first use after a Reach. Entries
// are meaningful only for visited nodes. Intervals nest, so y lies in
// subtree(a) iff tin[a] <= tin[y] && tin[y] <= tout[a]; the entry time
// alone orders witnesses, which lets callers reduce "is any witness
// outside subtree(a)" to two comparisons against precomputed extremes.
func (f *FlowDom) TreeTimes() (tin, tout []int32) {
	if !f.treeReady {
		f.buildTree()
	}
	return f.ttin, f.ttout
}

// Visited reports whether v was reached for the current source.
func (f *FlowDom) Visited(v int) bool { return f.mark[v] == f.epoch }

// VisitedRow returns the visited set as a shared bitset row.
func (f *FlowDom) VisitedRow() []uint64 { return f.visited }

// DomAncestor reports whether a dominates y in the current source's
// flowgraph (every seed-to-y path passes through a). Both a and y must be
// visited; a == y reports true. Dominators are computed lazily on the
// first query per source.
func (f *FlowDom) DomAncestor(a, y int) bool {
	if !f.domsReady {
		f.doms()
	}
	return f.tin[a] <= f.tin[y] && f.tout[y] <= f.tout[a]
}

// doms runs the iterate-to-fixpoint immediate-dominator computation
// (Cooper–Harvey–Kennedy, scatter form: meets are applied along out-edges
// so no per-source predecessor lists are materialized), then numbers the
// dominator tree with entry/exit intervals for O(1) ancestor tests.
func (f *FlowDom) doms() {
	f.domsReady = true
	root := int32(f.n)
	f.idom[root] = root
	f.bnum[root] = 0
	for i, v := range f.order {
		f.idom[v] = -1
		f.bnum[v] = int32(i + 1)
	}
	for changed := true; changed; {
		changed = false
		for _, s := range f.seeds {
			if f.meet(root, s) {
				changed = true
			}
		}
		for _, u := range f.order {
			for _, v := range f.csr.Out(int(u)) {
				if v == f.cut || f.mark[v] != f.epoch {
					continue
				}
				if f.meet(u, v) {
					changed = true
				}
			}
		}
	}
	f.childHead[root] = -1
	for _, v := range f.order {
		f.childHead[v] = -1
	}
	for i := len(f.order) - 1; i >= 0; i-- {
		v := f.order[i]
		p := f.idom[v]
		f.childNext[v] = f.childHead[p]
		f.childHead[p] = v
	}
	t := int32(0)
	f.stack = append(f.stack[:0], root)
	for len(f.stack) > 0 {
		v := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		if v < 0 {
			f.tout[-(v + 1)] = t
			t++
			continue
		}
		f.tin[v] = t
		t++
		f.stack = append(f.stack, -(v + 1))
		for c := f.childHead[v]; c != -1; c = f.childNext[c] {
			f.stack = append(f.stack, c)
		}
	}
}

// meet folds flowgraph edge u -> v into idom[v]; reports change.
func (f *FlowDom) meet(u, v int32) bool {
	if f.idom[v] == -1 {
		f.idom[v] = u
		return true
	}
	x := f.intersect(u, f.idom[v])
	if x != f.idom[v] {
		f.idom[v] = x
		return true
	}
	return false
}

// intersect walks both fingers up the current idom chains to their
// lowest common candidate, ordering by BFS number (every dominator of a
// node is discovered before it, so chains are bnum-decreasing).
func (f *FlowDom) intersect(a, b int32) int32 {
	for a != b {
		for f.bnum[a] > f.bnum[b] {
			a = f.idom[a]
		}
		for f.bnum[b] > f.bnum[a] {
			b = f.idom[b]
		}
	}
	return a
}
