// Package sem implements name resolution and type checking for MiniSplit.
//
// The checker resolves every variable reference to a symbol (shared scalar,
// shared array, event, lock, local, or parameter), assigns a type to every
// expression, folds the constant expressions that declarations require
// (array sizes, scalar owners, initializers), and verifies the call graph is
// acyclic so that the IR builder may inline calls.
package sem

import (
	"fmt"

	"repro/internal/source"
)

// SymKind classifies a resolved symbol.
type SymKind int

// Symbol kinds.
const (
	SymSharedScalar SymKind = iota
	SymSharedArray
	SymEvent
	SymLock
	SymLocal // function-local scalar or array (including parameters)
)

// String names the kind for diagnostics.
func (k SymKind) String() string {
	switch k {
	case SymSharedScalar:
		return "shared scalar"
	case SymSharedArray:
		return "shared array"
	case SymEvent:
		return "event"
	case SymLock:
		return "lock"
	case SymLocal:
		return "local"
	default:
		return "unknown"
	}
}

// Symbol is a resolved program entity.
type Symbol struct {
	// ID is a dense index interning the symbol within its category
	// (position in Info.Shared, Info.Events, or Info.Locks). The
	// simulator's hot path uses it to replace map lookups with slice
	// indexing. Locals always have ID 0.
	ID     int
	Name   string
	Kind   SymKind
	Type   source.Type   // element type for arrays; TypeInt for events/locks
	Size   int64         // number of elements; 1 for scalars/plain events/locks
	Layout source.Layout // shared arrays only
	Owner  int64         // shared scalars only
	Init   ConstVal      // shared scalars only
	IsArr  bool          // declared with a size
	Decl   source.Pos
}

// ConstVal is a folded compile-time constant.
type ConstVal struct {
	Type source.Type
	I    int64
	F    float64
}

// Info is the result of checking a program: symbol resolution and types.
type Info struct {
	Prog    *source.Program
	Shared  []*Symbol // shared scalars and arrays, in declaration order
	Events  []*Symbol
	Locks   []*Symbol
	Funcs   map[string]*source.FuncDecl
	Refs    map[*source.VarRef]*Symbol            // every VarRef's target
	Types   map[source.Expr]source.Type           // every expression's type
	Calls   map[*source.CallExpr]*source.FuncDecl // user calls (nil entry for builtins)
	Builtin map[*source.CallExpr]string           // builtin calls by name
}

// Lookup finds a shared/event/lock symbol by name, or nil.
func (in *Info) Lookup(name string) *Symbol {
	for _, s := range in.Shared {
		if s.Name == name {
			return s
		}
	}
	for _, s := range in.Events {
		if s.Name == name {
			return s
		}
	}
	for _, s := range in.Locks {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Error is a semantic error with a source position.
type Error struct {
	Pos source.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// builtins maps builtin function names to (param types, result type).
var builtins = map[string]struct {
	params []source.Type
	result source.Type
}{
	"itof":  {[]source.Type{source.TypeInt}, source.TypeFloat},
	"ftoi":  {[]source.Type{source.TypeFloat}, source.TypeInt},
	"fabs":  {[]source.Type{source.TypeFloat}, source.TypeFloat},
	"fsqrt": {[]source.Type{source.TypeFloat}, source.TypeFloat},
	"imin":  {[]source.Type{source.TypeInt, source.TypeInt}, source.TypeInt},
	"imax":  {[]source.Type{source.TypeInt, source.TypeInt}, source.TypeInt},
}

// IsBuiltin reports whether name names a MiniSplit builtin function.
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

type checker struct {
	info   *Info
	scopes []map[string]*Symbol // innermost last
	fn     *source.FuncDecl     // function being checked
	err    error
}

// Check resolves and type-checks prog. It returns the first error found.
func Check(prog *source.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Prog:    prog,
			Funcs:   make(map[string]*source.FuncDecl),
			Refs:    make(map[*source.VarRef]*Symbol),
			Types:   make(map[source.Expr]source.Type),
			Calls:   make(map[*source.CallExpr]*source.FuncDecl),
			Builtin: make(map[*source.CallExpr]string),
		},
	}
	c.collectGlobals(prog)
	if c.err != nil {
		return nil, c.err
	}
	main := c.info.Funcs["main"]
	if main == nil {
		return nil, &Error{Msg: "program has no main function"}
	}
	if len(main.Params) != 0 || main.Result != source.TypeVoid {
		return nil, &Error{Pos: main.Pos, Msg: "main must take no parameters and return no value"}
	}
	for _, f := range prog.Funcs() {
		c.checkFunc(f)
		if c.err != nil {
			return nil, c.err
		}
	}
	if err := c.checkNoRecursion(prog); err != nil {
		return nil, err
	}
	c.info.internSymbols()
	return c.info, nil
}

// internSymbols assigns each shared/event/lock symbol its dense per-category
// ID (its position in the declaration-ordered slice).
func (in *Info) internSymbols() {
	for i, s := range in.Shared {
		s.ID = i
	}
	for i, s := range in.Events {
		s.ID = i
	}
	for i, s := range in.Locks {
		s.ID = i
	}
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	if c.err == nil {
		c.err = &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
}

func (c *checker) collectGlobals(prog *source.Program) {
	seen := make(map[string]source.Pos)
	declare := func(name string, pos source.Pos) bool {
		if prev, dup := seen[name]; dup {
			c.errorf(pos, "%s redeclared (previous declaration at %s)", name, prev)
			return false
		}
		seen[name] = pos
		return true
	}
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *source.SharedDecl:
			if !declare(d.Name, d.Pos) {
				return
			}
			sym := &Symbol{Name: d.Name, Type: d.Type, Size: 1, Decl: d.Pos}
			if d.Size != nil {
				sym.Kind = SymSharedArray
				sym.IsArr = true
				sym.Layout = d.Layout
				n, ok := c.constInt(d.Size)
				if !ok {
					return
				}
				if n <= 0 {
					c.errorf(d.Pos, "array %s has non-positive size %d", d.Name, n)
					return
				}
				sym.Size = n
			} else {
				sym.Kind = SymSharedScalar
				if d.Owner != nil {
					o, ok := c.constInt(d.Owner)
					if !ok {
						return
					}
					if o < 0 {
						c.errorf(d.Pos, "scalar %s has negative owner %d", d.Name, o)
						return
					}
					sym.Owner = o
				}
				if d.Init != nil {
					v, ok := c.constVal(d.Init)
					if !ok {
						return
					}
					if v.Type == source.TypeInt && d.Type == source.TypeFloat {
						v = ConstVal{Type: source.TypeFloat, F: float64(v.I)}
					}
					if v.Type != d.Type {
						c.errorf(d.Pos, "initializer type %s does not match %s %s", v.Type, d.Type, d.Name)
						return
					}
					sym.Init = v
				} else {
					sym.Init = ConstVal{Type: d.Type}
				}
			}
			c.info.Shared = append(c.info.Shared, sym)
		case *source.EventDecl:
			if !declare(d.Name, d.Pos) {
				return
			}
			sym := &Symbol{Name: d.Name, Kind: SymEvent, Type: source.TypeInt, Size: 1, Decl: d.Pos}
			if d.Size != nil {
				sym.IsArr = true
				n, ok := c.constInt(d.Size)
				if !ok {
					return
				}
				if n <= 0 {
					c.errorf(d.Pos, "event array %s has non-positive size %d", d.Name, n)
					return
				}
				sym.Size = n
			}
			c.info.Events = append(c.info.Events, sym)
		case *source.LockDecl:
			if !declare(d.Name, d.Pos) {
				return
			}
			sym := &Symbol{Name: d.Name, Kind: SymLock, Type: source.TypeInt, Size: 1, Decl: d.Pos}
			if d.Size != nil {
				sym.IsArr = true
				n, ok := c.constInt(d.Size)
				if !ok {
					return
				}
				if n <= 0 {
					c.errorf(d.Pos, "lock array %s has non-positive size %d", d.Name, n)
					return
				}
				sym.Size = n
			}
			c.info.Locks = append(c.info.Locks, sym)
		case *source.FuncDecl:
			if !declare(d.Name, d.Pos) {
				return
			}
			if IsBuiltin(d.Name) {
				c.errorf(d.Pos, "%s is a builtin function and cannot be redefined", d.Name)
				return
			}
			c.info.Funcs[d.Name] = d
		}
	}
}

// constInt folds a constant integer expression (literals and arithmetic).
func (c *checker) constInt(e source.Expr) (int64, bool) {
	v, ok := c.constVal(e)
	if !ok {
		return 0, false
	}
	if v.Type != source.TypeInt {
		c.errorf(e.Position(), "expected constant integer expression")
		return 0, false
	}
	return v.I, true
}

func (c *checker) constVal(e source.Expr) (ConstVal, bool) {
	switch e := e.(type) {
	case *source.IntLit:
		return ConstVal{Type: source.TypeInt, I: e.Value}, true
	case *source.FloatLit:
		return ConstVal{Type: source.TypeFloat, F: e.Value}, true
	case *source.UnExpr:
		if e.Op != source.OpNeg {
			break
		}
		v, ok := c.constVal(e.X)
		if !ok {
			return ConstVal{}, false
		}
		v.I, v.F = -v.I, -v.F
		return v, true
	case *source.BinExpr:
		l, ok := c.constVal(e.L)
		if !ok {
			return ConstVal{}, false
		}
		r, ok := c.constVal(e.R)
		if !ok {
			return ConstVal{}, false
		}
		if l.Type != source.TypeInt || r.Type != source.TypeInt {
			break
		}
		switch e.Op {
		case source.OpAdd:
			return ConstVal{Type: source.TypeInt, I: l.I + r.I}, true
		case source.OpSub:
			return ConstVal{Type: source.TypeInt, I: l.I - r.I}, true
		case source.OpMul:
			return ConstVal{Type: source.TypeInt, I: l.I * r.I}, true
		case source.OpDiv:
			if r.I == 0 {
				c.errorf(e.Pos, "division by zero in constant expression")
				return ConstVal{}, false
			}
			return ConstVal{Type: source.TypeInt, I: l.I / r.I}, true
		case source.OpMod:
			if r.I == 0 {
				c.errorf(e.Pos, "division by zero in constant expression")
				return ConstVal{}, false
			}
			return ConstVal{Type: source.TypeInt, I: l.I % r.I}, true
		}
	}
	c.errorf(e.Position(), "expression is not a compile-time constant")
	return ConstVal{}, false
}

func (c *checker) pushScope() {
	c.scopes = append(c.scopes, make(map[string]*Symbol))
}

func (c *checker) popScope() {
	c.scopes = c.scopes[:len(c.scopes)-1]
}

func (c *checker) declareLocal(name string, pos source.Pos, typ source.Type, size int64, isArr bool) *Symbol {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(pos, "%s redeclared in this block", name)
		return nil
	}
	sym := &Symbol{Name: name, Kind: SymLocal, Type: typ, Size: size, IsArr: isArr, Decl: pos}
	top[name] = sym
	return sym
}

// resolve finds name in local scopes then globals.
func (c *checker) resolve(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.info.Lookup(name)
}

func (c *checker) checkFunc(f *source.FuncDecl) {
	c.fn = f
	c.pushScope()
	for _, p := range f.Params {
		c.declareLocal(p.Name, p.Pos, p.Type, 1, false)
	}
	c.checkBlock(f.Body)
	c.popScope()
	c.fn = nil
}

func (c *checker) checkBlock(b *source.BlockStmt) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
		if c.err != nil {
			break
		}
	}
	c.popScope()
}

func (c *checker) checkStmt(s source.Stmt) {
	switch s := s.(type) {
	case *source.BlockStmt:
		c.checkBlock(s)
	case *source.LocalDecl:
		c.checkLocalDecl(s)
	case *source.AssignStmt:
		c.checkAssign(s)
	case *source.IfStmt:
		c.checkCond(s.Cond)
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkBlock(s.Else)
		}
	case *source.WhileStmt:
		c.checkCond(s.Cond)
		c.checkBlock(s.Body)
	case *source.ForStmt:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond)
		}
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.checkBlock(s.Body)
		c.popScope()
	case *source.BarrierStmt:
		// nothing to check
	case *source.PostStmt:
		c.checkSyncRef(s.Event, SymEvent, "post")
	case *source.WaitStmt:
		c.checkSyncRef(s.Event, SymEvent, "wait")
	case *source.LockStmt:
		c.checkSyncRef(s.Lock, SymLock, "lock")
	case *source.UnlockStmt:
		c.checkSyncRef(s.Lock, SymLock, "unlock")
	case *source.CallStmt:
		c.checkCall(s.Call, true)
	case *source.ReturnStmt:
		c.checkReturn(s)
	case *source.PrintStmt:
		for _, a := range s.Args {
			if _, ok := a.(*source.StringLit); ok {
				c.info.Types[a] = source.TypeInvalid
				continue
			}
			c.checkExpr(a)
		}
	default:
		c.errorf(s.Position(), "unhandled statement %T", s)
	}
}

func (c *checker) checkLocalDecl(s *source.LocalDecl) {
	size := int64(1)
	isArr := false
	if s.Size != nil {
		n, ok := c.constInt(s.Size)
		if !ok {
			return
		}
		if n <= 0 {
			c.errorf(s.Pos, "local array %s has non-positive size %d", s.Name, n)
			return
		}
		size, isArr = n, true
	}
	if s.Init != nil {
		t := c.checkExpr(s.Init)
		if t == source.TypeInvalid {
			return
		}
		if !assignable(t, s.Type) {
			c.errorf(s.Pos, "cannot initialize %s %s with %s value", s.Type, s.Name, t)
			return
		}
	}
	c.declareLocal(s.Name, s.Pos, s.Type, size, isArr)
}

func (c *checker) checkAssign(s *source.AssignStmt) {
	sym := c.resolve(s.LHS.Name)
	if sym == nil {
		c.errorf(s.LHS.Pos, "undefined: %s", s.LHS.Name)
		return
	}
	c.info.Refs[s.LHS] = sym
	switch sym.Kind {
	case SymEvent, SymLock:
		c.errorf(s.LHS.Pos, "cannot assign to %s %s", sym.Kind, sym.Name)
		return
	}
	if !c.checkIndexing(s.LHS, sym) {
		return
	}
	c.info.Types[s.LHS] = sym.Type
	t := c.checkExpr(s.RHS)
	if t == source.TypeInvalid {
		return
	}
	if !assignable(t, sym.Type) {
		c.errorf(s.Pos, "cannot assign %s value to %s %s", t, sym.Type, sym.Name)
	}
}

// checkIndexing validates the presence/absence of an index against the
// symbol's shape and checks the index expression type.
func (c *checker) checkIndexing(ref *source.VarRef, sym *Symbol) bool {
	if sym.IsArr {
		if ref.Index == nil {
			c.errorf(ref.Pos, "%s %s must be indexed", sym.Kind, sym.Name)
			return false
		}
		t := c.checkExpr(ref.Index)
		if t == source.TypeInvalid {
			return false
		}
		if t != source.TypeInt {
			c.errorf(ref.Index.Position(), "array index must be int, got %s", t)
			return false
		}
		return true
	}
	if ref.Index != nil {
		c.errorf(ref.Pos, "%s %s is not an array", sym.Kind, sym.Name)
		return false
	}
	return true
}

func (c *checker) checkSyncRef(ref *source.VarRef, want SymKind, op string) {
	sym := c.resolve(ref.Name)
	if sym == nil {
		c.errorf(ref.Pos, "undefined: %s", ref.Name)
		return
	}
	if sym.Kind != want {
		c.errorf(ref.Pos, "%s requires a %s, but %s is a %s", op, want, ref.Name, sym.Kind)
		return
	}
	c.info.Refs[ref] = sym
	c.checkIndexing(ref, sym)
}

func (c *checker) checkReturn(s *source.ReturnStmt) {
	want := c.fn.Result
	if s.Value == nil {
		if want != source.TypeVoid {
			c.errorf(s.Pos, "missing return value (function %s returns %s)", c.fn.Name, want)
		}
		return
	}
	if want == source.TypeVoid {
		c.errorf(s.Pos, "function %s returns no value", c.fn.Name)
		return
	}
	t := c.checkExpr(s.Value)
	if t != source.TypeInvalid && !assignable(t, want) {
		c.errorf(s.Pos, "cannot return %s from function returning %s", t, want)
	}
}

func (c *checker) checkCond(e source.Expr) {
	t := c.checkExpr(e)
	if t != source.TypeInvalid && t != source.TypeBool && t != source.TypeInt {
		c.errorf(e.Position(), "condition must be boolean or int, got %s", t)
	}
}

// assignable reports whether a value of type from may be stored in type to.
// Ints widen implicitly to floats; all other conversions are explicit.
func assignable(from, to source.Type) bool {
	if from == to {
		return true
	}
	if from == source.TypeBool && to == source.TypeInt {
		return true // comparisons store as 0/1
	}
	return from == source.TypeInt && to == source.TypeFloat
}

func (c *checker) checkExpr(e source.Expr) source.Type {
	t := c.exprType(e)
	c.info.Types[e] = t
	return t
}

func (c *checker) exprType(e source.Expr) source.Type {
	switch e := e.(type) {
	case *source.IntLit:
		return source.TypeInt
	case *source.FloatLit:
		return source.TypeFloat
	case *source.StringLit:
		c.errorf(e.Pos, "string literals are only allowed in print")
		return source.TypeInvalid
	case *source.MyProcExpr, *source.ProcsExpr:
		return source.TypeInt
	case *source.VarRef:
		sym := c.resolve(e.Name)
		if sym == nil {
			c.errorf(e.Pos, "undefined: %s", e.Name)
			return source.TypeInvalid
		}
		if sym.Kind == SymEvent || sym.Kind == SymLock {
			c.errorf(e.Pos, "%s %s cannot be used as a value", sym.Kind, sym.Name)
			return source.TypeInvalid
		}
		c.info.Refs[e] = sym
		if !c.checkIndexing(e, sym) {
			return source.TypeInvalid
		}
		return sym.Type
	case *source.UnExpr:
		t := c.checkExpr(e.X)
		if t == source.TypeInvalid {
			return source.TypeInvalid
		}
		switch e.Op {
		case source.OpNeg:
			if t != source.TypeInt && t != source.TypeFloat {
				c.errorf(e.Pos, "cannot negate %s", t)
				return source.TypeInvalid
			}
			return t
		case source.OpNot:
			if t != source.TypeBool && t != source.TypeInt {
				c.errorf(e.Pos, "cannot apply ! to %s", t)
				return source.TypeInvalid
			}
			return source.TypeBool
		}
		return source.TypeInvalid
	case *source.BinExpr:
		lt := c.checkExpr(e.L)
		rt := c.checkExpr(e.R)
		if lt == source.TypeInvalid || rt == source.TypeInvalid {
			return source.TypeInvalid
		}
		switch e.Op {
		case source.OpAdd, source.OpSub, source.OpMul, source.OpDiv:
			if !numeric(lt) || !numeric(rt) {
				c.errorf(e.Pos, "operator %s requires numeric operands, got %s and %s", e.Op, lt, rt)
				return source.TypeInvalid
			}
			if lt == source.TypeFloat || rt == source.TypeFloat {
				return source.TypeFloat
			}
			return source.TypeInt
		case source.OpMod:
			if lt != source.TypeInt || rt != source.TypeInt {
				c.errorf(e.Pos, "operator %% requires int operands, got %s and %s", lt, rt)
				return source.TypeInvalid
			}
			return source.TypeInt
		case source.OpEq, source.OpNeq, source.OpLt, source.OpLe, source.OpGt, source.OpGe:
			if !numeric(lt) || !numeric(rt) {
				c.errorf(e.Pos, "operator %s requires numeric operands, got %s and %s", e.Op, lt, rt)
				return source.TypeInvalid
			}
			return source.TypeBool
		case source.OpAnd, source.OpOr:
			if !boolish(lt) || !boolish(rt) {
				c.errorf(e.Pos, "operator %s requires boolean operands, got %s and %s", e.Op, lt, rt)
				return source.TypeInvalid
			}
			return source.TypeBool
		}
		return source.TypeInvalid
	case *source.CallExpr:
		return c.checkCall(e, false)
	default:
		c.errorf(e.Position(), "unhandled expression %T", e)
		return source.TypeInvalid
	}
}

func numeric(t source.Type) bool { return t == source.TypeInt || t == source.TypeFloat }
func boolish(t source.Type) bool { return t == source.TypeBool || t == source.TypeInt }

func (c *checker) checkCall(e *source.CallExpr, asStmt bool) source.Type {
	if b, ok := builtins[e.Name]; ok {
		c.info.Builtin[e] = e.Name
		if len(e.Args) != len(b.params) {
			c.errorf(e.Pos, "%s takes %d arguments, got %d", e.Name, len(b.params), len(e.Args))
			return source.TypeInvalid
		}
		for i, a := range e.Args {
			t := c.checkExpr(a)
			if t == source.TypeInvalid {
				return source.TypeInvalid
			}
			if !assignable(t, b.params[i]) {
				c.errorf(a.Position(), "%s argument %d must be %s, got %s", e.Name, i+1, b.params[i], t)
				return source.TypeInvalid
			}
		}
		c.info.Types[e] = b.result
		return b.result
	}
	f := c.info.Funcs[e.Name]
	if f == nil {
		c.errorf(e.Pos, "undefined function: %s", e.Name)
		return source.TypeInvalid
	}
	c.info.Calls[e] = f
	if len(e.Args) != len(f.Params) {
		c.errorf(e.Pos, "%s takes %d arguments, got %d", e.Name, len(f.Params), len(e.Args))
		return source.TypeInvalid
	}
	for i, a := range e.Args {
		t := c.checkExpr(a)
		if t == source.TypeInvalid {
			return source.TypeInvalid
		}
		if !assignable(t, f.Params[i].Type) {
			c.errorf(a.Position(), "%s argument %d must be %s, got %s", e.Name, i+1, f.Params[i].Type, t)
			return source.TypeInvalid
		}
	}
	if !asStmt && f.Result == source.TypeVoid {
		c.errorf(e.Pos, "%s returns no value", e.Name)
		return source.TypeInvalid
	}
	c.info.Types[e] = f.Result
	return f.Result
}

// checkNoRecursion verifies the user call graph is acyclic (the IR builder
// inlines all calls, so recursion cannot be compiled).
func (c *checker) checkNoRecursion(prog *source.Program) error {
	// Walk each function body to find its call sites.
	callees := make(map[string]map[string]bool)
	for _, f := range prog.Funcs() {
		set := make(map[string]bool)
		collectCalls(f.Body, set)
		callees[f.Name] = set
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		switch color[name] {
		case gray:
			return &Error{Msg: fmt.Sprintf("recursive call cycle involving %s (MiniSplit functions are inlined and may not recurse): %v", name, append(path, name))}
		case black:
			return nil
		}
		color[name] = gray
		for callee := range callees[name] {
			if _, isUser := c.info.Funcs[callee]; !isUser {
				continue
			}
			if err := visit(callee, append(path, name)); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for _, f := range prog.Funcs() {
		if err := visit(f.Name, nil); err != nil {
			return err
		}
	}
	return nil
}

func collectCalls(n any, out map[string]bool) {
	switch n := n.(type) {
	case *source.BlockStmt:
		for _, s := range n.Stmts {
			collectCalls(s, out)
		}
	case *source.LocalDecl:
		if n.Init != nil {
			collectCalls(n.Init, out)
		}
	case *source.AssignStmt:
		collectCalls(n.LHS, out)
		collectCalls(n.RHS, out)
	case *source.IfStmt:
		collectCalls(n.Cond, out)
		collectCalls(n.Then, out)
		if n.Else != nil {
			collectCalls(n.Else, out)
		}
	case *source.WhileStmt:
		collectCalls(n.Cond, out)
		collectCalls(n.Body, out)
	case *source.ForStmt:
		if n.Init != nil {
			collectCalls(n.Init, out)
		}
		if n.Cond != nil {
			collectCalls(n.Cond, out)
		}
		if n.Post != nil {
			collectCalls(n.Post, out)
		}
		collectCalls(n.Body, out)
	case *source.CallStmt:
		collectCalls(n.Call, out)
	case *source.ReturnStmt:
		if n.Value != nil {
			collectCalls(n.Value, out)
		}
	case *source.PrintStmt:
		for _, a := range n.Args {
			collectCalls(a, out)
		}
	case *source.PostStmt:
		collectCalls(n.Event, out)
	case *source.WaitStmt:
		collectCalls(n.Event, out)
	case *source.LockStmt:
		collectCalls(n.Lock, out)
	case *source.UnlockStmt:
		collectCalls(n.Lock, out)
	case *source.VarRef:
		if n.Index != nil {
			collectCalls(n.Index, out)
		}
	case *source.BinExpr:
		collectCalls(n.L, out)
		collectCalls(n.R, out)
	case *source.UnExpr:
		collectCalls(n.X, out)
	case *source.CallExpr:
		out[n.Name] = true
		for _, a := range n.Args {
			collectCalls(a, out)
		}
	}
}
