package sem

import (
	"strings"
	"testing"

	"repro/internal/source"
)

func check(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func checkErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	prog, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatalf("Check succeeded, want error containing %q", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSubstr)
	}
}

func TestCheckMinimal(t *testing.T) {
	info := check(t, `func main() { }`)
	if info.Funcs["main"] == nil {
		t.Fatal("main not recorded")
	}
}

func TestCheckMissingMain(t *testing.T) {
	checkErr(t, `func helper() { }`, "no main")
}

func TestCheckMainSignature(t *testing.T) {
	checkErr(t, `func main(int x) { }`, "main must take no parameters")
	checkErr(t, `func main() int { return 0; }`, "main must take no parameters")
}

func TestCheckSharedScalar(t *testing.T) {
	info := check(t, `
shared int X on 2 = 40 + 2;
shared float F = 3;
func main() { X = X + 1; }
`)
	x := info.Lookup("X")
	if x == nil || x.Kind != SymSharedScalar {
		t.Fatalf("X = %+v", x)
	}
	if x.Owner != 2 {
		t.Errorf("X owner = %d, want 2", x.Owner)
	}
	if x.Init.I != 42 {
		t.Errorf("X init = %d, want 42", x.Init.I)
	}
	f := info.Lookup("F")
	if f.Init.Type != source.TypeFloat || f.Init.F != 3 {
		t.Errorf("F init = %+v, want float 3 (int widened)", f.Init)
	}
}

func TestCheckSharedArray(t *testing.T) {
	info := check(t, `
shared int A[4 * 8] cyclic;
func main() { A[0] = 1; }
`)
	a := info.Lookup("A")
	if a.Kind != SymSharedArray || a.Size != 32 || a.Layout != source.LayoutCyclic {
		t.Fatalf("A = %+v", a)
	}
}

func TestCheckConstErrors(t *testing.T) {
	checkErr(t, `shared int A[0]; func main() { }`, "non-positive size")
	checkErr(t, `shared int A[5 - 9]; func main() { }`, "non-positive size")
	checkErr(t, `shared int A[PROCS]; func main() { }`, "not a compile-time constant")
	checkErr(t, `shared int A[10/0]; func main() { }`, "division by zero")
	checkErr(t, `shared int X on 0-1; func main() { }`, "negative owner")
	checkErr(t, `shared int X = 1.5; func main() { }`, "initializer type")
}

func TestCheckRedeclaration(t *testing.T) {
	checkErr(t, `shared int X; shared float X; func main() { }`, "redeclared")
	checkErr(t, `shared int X; event X; func main() { }`, "redeclared")
	checkErr(t, `func f() { } func f() { } func main() { }`, "redeclared")
	checkErr(t, `func main() { local int x; local int x; }`, "redeclared in this block")
}

func TestCheckLocalShadowing(t *testing.T) {
	// A local in an inner block may shadow an outer local or a global.
	check(t, `
shared int X;
func main() {
    local int y = 1;
    {
        local int y = 2;
        local int X = 3;
        y = X;
    }
    y = X;
}
`)
}

func TestCheckUndefined(t *testing.T) {
	checkErr(t, `func main() { x = 1; }`, "undefined: x")
	checkErr(t, `func main() { local int y = z; }`, "undefined: z")
	checkErr(t, `func main() { f(); }`, "undefined function: f")
}

func TestCheckIndexing(t *testing.T) {
	checkErr(t, `shared int A[4]; func main() { A = 1; }`, "must be indexed")
	checkErr(t, `shared int X; func main() { X[0] = 1; }`, "is not an array")
	checkErr(t, `shared int A[4]; func main() { A[1.5] = 1; }`, "index must be int")
	checkErr(t, `func main() { local int a[3]; a = 1; }`, "must be indexed")
}

func TestCheckEventsLocks(t *testing.T) {
	check(t, `
event e;
event es[4];
lock l;
func main() {
    post(e); wait(e);
    post(es[MYPROC % 4]); wait(es[0]);
    lock(l); unlock(l);
}
`)
	checkErr(t, `event e; func main() { lock(e); }`, "lock requires a lock")
	checkErr(t, `lock l; func main() { post(l); }`, "post requires a event")
	checkErr(t, `shared int x; func main() { wait(x); }`, "wait requires a event")
	checkErr(t, `event e; func main() { e = 1; }`, "cannot assign to event")
	checkErr(t, `event e; func main() { local int x = e; }`, "cannot be used as a value")
	checkErr(t, `event es[2]; func main() { post(es); }`, "must be indexed")
	checkErr(t, `event e; func main() { post(e[0]); }`, "is not an array")
	checkErr(t, `event es[0]; func main() { }`, "non-positive size")
	checkErr(t, `lock ls[0-2]; func main() { }`, "non-positive size")
}

func TestCheckTypeRules(t *testing.T) {
	// int widens to float
	check(t, `
shared float F;
func main() {
    local float x = 1;
    F = 2 + x;
    x = 3 * 2;
}
`)
	checkErr(t, `func main() { local int x = 1.5; }`, "cannot initialize")
	checkErr(t, `shared int X; func main() { X = 1.5; }`, "cannot assign")
	checkErr(t, `func main() { local int x = 1.5 % 2; }`, "requires int operands")
	checkErr(t, `func main() { local int b = !1.5; }`, "cannot apply !")
	checkErr(t, `func main() { if (1 && 2.5) { } }`, "requires boolean operands")
}

func TestCheckBoolAsInt(t *testing.T) {
	// Comparisons store into ints as 0/1, and ints can be conditions.
	check(t, `
func main() {
    local int b = 3 < 4;
    if (b) { b = 0; }
    while (b && 1) { b = 0; }
    local int c = !b;
}
`)
}

func TestCheckCalls(t *testing.T) {
	info := check(t, `
func add(int a, int b) int { return a + b; }
func work() { return; }
func main() {
    local int x = add(1, 2);
    work();
}
`)
	if len(info.Calls) != 2 {
		t.Errorf("recorded %d calls, want 2", len(info.Calls))
	}
	checkErr(t, `func f(int a) int { return a; } func main() { local int x = f(); }`, "takes 1 arguments")
	checkErr(t, `func f(int a) int { return a; } func main() { local int x = f(1.5); }`, "must be int")
	checkErr(t, `func v() { } func main() { local int x = v(); }`, "returns no value")
}

func TestCheckReturnRules(t *testing.T) {
	checkErr(t, `func f() int { return; } func main() { f(); }`, "missing return value")
	checkErr(t, `func f() { return 1; } func main() { f(); }`, "returns no value")
	checkErr(t, `func f() int { return 1.5; } func main() { local int x = f(); }`, "cannot return")
}

func TestCheckBuiltins(t *testing.T) {
	info := check(t, `
func main() {
    local float f = itof(3);
    local int i = ftoi(f);
    f = fabs(f) + fsqrt(4.0);
    i = imin(i, 2) + imax(1, i);
}
`)
	if len(info.Builtin) != 6 {
		t.Errorf("recorded %d builtin calls, want 6", len(info.Builtin))
	}
	checkErr(t, `func main() { local float x = itof(1.5); }`, "must be int")
	checkErr(t, `func main() { local int x = imin(1); }`, "takes 2 arguments")
	checkErr(t, `func itof() { } func main() { }`, "builtin")
}

func TestCheckRecursionRejected(t *testing.T) {
	checkErr(t, `
func f(int n) int { return g(n); }
func g(int n) int { return f(n); }
func main() { local int x = f(1); }
`, "recursive")
	checkErr(t, `
func f(int n) int { return f(n - 1); }
func main() { local int x = f(3); }
`, "recursive")
}

func TestCheckNonRecursiveDiamond(t *testing.T) {
	// Diamond call graphs are fine.
	check(t, `
func leaf() int { return 1; }
func a() int { return leaf(); }
func b() int { return leaf(); }
func main() { local int x = a() + b(); }
`)
}

func TestCheckStringOnlyInPrint(t *testing.T) {
	check(t, `func main() { print("ok", 1); }`)
	// The parser already confines string literals to print arguments; the
	// checker's guard is exercised directly on a constructed AST.
	prog := source.MustParse(`func main() { local int x = 1; }`)
	decl := prog.Func("main").Body.Stmts[0].(*source.LocalDecl)
	decl.Init = &source.StringLit{Value: "b"}
	if _, err := Check(prog); err == nil || !strings.Contains(err.Error(), "string literals") {
		t.Fatalf("got %v, want string-literal error", err)
	}
}

func TestCheckRefsRecorded(t *testing.T) {
	info := check(t, `
shared int A[8];
func main() {
    local int i = MYPROC;
    A[i] = A[i] + 1;
}
`)
	count := 0
	for _, sym := range info.Refs {
		if sym.Name == "A" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("A referenced %d times in Refs, want 2", count)
	}
}

func TestCheckTypesRecorded(t *testing.T) {
	info := check(t, `
shared float F;
func main() {
    local int i = 1;
    F = i + 2.5;
}
`)
	found := false
	for e, typ := range info.Types {
		if be, ok := e.(*source.BinExpr); ok && be.Op == source.OpAdd {
			found = true
			if typ != source.TypeFloat {
				t.Errorf("i + 2.5 has type %s, want float", typ)
			}
		}
	}
	if !found {
		t.Error("add expression not found in Types")
	}
}

func TestCheckForScope(t *testing.T) {
	// The for-init variable is scoped to the loop.
	checkErr(t, `
func main() {
    for (local int i = 0; i < 3; i = i + 1) { }
    i = 5;
}
`, "undefined: i")
}

func TestSymKindString(t *testing.T) {
	kinds := []SymKind{SymSharedScalar, SymSharedArray, SymEvent, SymLock, SymLocal}
	for _, k := range kinds {
		if k.String() == "unknown" {
			t.Errorf("kind %d renders as unknown", k)
		}
	}
	if SymKind(99).String() != "unknown" {
		t.Error("invalid kind should render as unknown")
	}
}

func TestIsBuiltin(t *testing.T) {
	if !IsBuiltin("itof") || !IsBuiltin("fsqrt") {
		t.Error("expected itof and fsqrt to be builtins")
	}
	if IsBuiltin("main") || IsBuiltin("") {
		t.Error("main should not be a builtin")
	}
}
