package splitc

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/codegen"
	"repro/internal/delay"
	"repro/internal/ir"
	"repro/internal/pass"
	"repro/internal/progen"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/syncanal"
)

// legacyCompile reproduces the pre-pipeline Compile path: monolithic
// analysis followed by a single codegen.Generate call. The pass pipeline
// must match its output byte for byte.
func legacyCompile(t *testing.T, src string, opts Options) (*codegen.Result, *syncanal.Result) {
	t.Helper()
	ast, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(ast)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := ir.Build(info, ir.BuildOptions{Procs: opts.Procs})
	if err != nil {
		t.Fatal(err)
	}
	analysis := syncanal.Analyze(fn, syncanal.Options{Exact: opts.Exact})
	cg := codegen.Options{CSE: opts.CSE, Weaken: opts.Weaken}
	switch opts.Level {
	case LevelBlocking:
		cg.Delays = analysis.D
	case LevelBaseline:
		cg.Delays = analysis.Baseline
		cg.Pipeline = true
	case LevelPipelined:
		cg.Delays = analysis.D
		cg.Pipeline = true
		cg.Hoist = !opts.NoHoist
	case LevelOneWay:
		cg.Delays = analysis.D
		cg.Pipeline = true
		cg.OneWay = true
		cg.Hoist = !opts.NoHoist
	case LevelUnsafe:
		cg.Delays = delay.NewSet(fn)
		cg.Pipeline = true
		cg.OneWay = true
	default:
		t.Fatalf("unknown level %d", opts.Level)
	}
	return codegen.Generate(fn, cg), analysis
}

func checkPipelineMatchesLegacy(t *testing.T, name, src string, opts Options) {
	t.Helper()
	want, wantAnalysis := legacyCompile(t, src, opts)
	got, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if g, w := got.TargetText(), want.Prog.String(); g != w {
		t.Errorf("%s @ %s: pipeline target text differs from legacy path\npipeline:\n%s\nlegacy:\n%s",
			name, opts.Level, g, w)
	}
	if got.Codegen != want.Stats {
		t.Errorf("%s @ %s: stats differ: pipeline %+v, legacy %+v",
			name, opts.Level, got.Codegen, want.Stats)
	}
	if g, w := got.Analysis.D.Size(), wantAnalysis.D.Size(); g != w {
		t.Errorf("%s @ %s: final delay set size %d, legacy %d", name, opts.Level, g, w)
	}
}

var equivalenceLevels = []Level{LevelBlocking, LevelBaseline, LevelPipelined, LevelOneWay, LevelUnsafe}

func TestPipelineMatchesLegacyApps(t *testing.T) {
	for _, k := range apps.All() {
		src := k.Source(16, 1)
		for _, lvl := range equivalenceLevels {
			for _, cse := range []bool{false, true} {
				checkPipelineMatchesLegacy(t, k.Name, src, Options{Procs: 16, Level: lvl, CSE: cse})
			}
		}
	}
}

func TestPipelineMatchesLegacyGenerated(t *testing.T) {
	const seeds = 30
	for seed := int64(0); seed < seeds; seed++ {
		src := progen.Generate(seed, progen.Options{Procs: 8})
		for _, lvl := range equivalenceLevels {
			checkPipelineMatchesLegacy(t, "progen", src, Options{Procs: 8, Level: lvl, CSE: seed%2 == 0})
		}
	}
}

func TestPipelineMatchesLegacyAblations(t *testing.T) {
	src := apps.All()[0].Source(16, 1)
	checkPipelineMatchesLegacy(t, "nohoist", src, Options{Procs: 16, Level: LevelPipelined, NoHoist: true})
	checkPipelineMatchesLegacy(t, "nohoist-oneway", src, Options{Procs: 16, Level: LevelOneWay, NoHoist: true, CSE: true})
	checkPipelineMatchesLegacy(t, "exact", src, Options{Procs: 16, Level: LevelOneWay, Exact: true})
}

// TestPassStatsReproduceCodegenStats checks satellite invariants of the new
// per-pass instrumentation: summing each counter over the pipeline's passes
// must reproduce the monolithic codegen.Stats, and the communication
// counters must conserve the lowered gets and puts.
func TestPassStatsReproduceCodegenStats(t *testing.T) {
	for _, k := range apps.All() {
		src := k.Source(16, 1)
		for _, lvl := range equivalenceLevels {
			prog, err := Compile(src, Options{Procs: 16, Level: lvl, CSE: true})
			if err != nil {
				t.Fatalf("%s @ %s: %v", k.Name, lvl, err)
			}
			summed := make(map[string]int)
			perPass := make(map[string]map[string]int)
			for _, st := range prog.Passes {
				perPass[st.Name] = st.Counters
				for c, v := range st.Counters {
					summed[c] += v
				}
			}
			for c, v := range prog.Codegen.Map() {
				if summed[c] != v {
					t.Errorf("%s @ %s: counter %s summed over passes = %d, codegen.Stats = %d",
						k.Name, lvl, c, summed[c], v)
				}
			}
			// Conservation: every get lowered by split-phase is either in
			// the final program or accounted to an eliminating transform.
			ts := prog.Target.CollectStats()
			s := prog.Codegen
			lowered := perPass["split-phase"]
			if got := ts.Gets + s.GetsEliminated + s.GetsForwarded + s.GetsDead + s.GetsCached; got != lowered["gets"] {
				t.Errorf("%s @ %s: gets not conserved: final+eliminated = %d, lowered = %d",
					k.Name, lvl, got, lowered["gets"])
			}
			if got := ts.Puts + ts.Stores + s.PutsEliminated; got != lowered["puts"] {
				t.Errorf("%s @ %s: puts not conserved: final+stores+eliminated = %d, lowered = %d",
					k.Name, lvl, got, lowered["puts"])
			}
			if ts.Stores != s.PutsConverted {
				t.Errorf("%s @ %s: stores = %d, puts_converted = %d",
					k.Name, lvl, ts.Stores, s.PutsConverted)
			}
			// Every pass that ran must be in the planned name list, in order.
			names, err := PassNames(Options{Procs: 16, Level: lvl, CSE: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != len(prog.Passes) {
				t.Fatalf("%s @ %s: %d passes ran, plan has %d", k.Name, lvl, len(prog.Passes), len(names))
			}
			for i, st := range prog.Passes {
				if st.Name != names[i] {
					t.Errorf("%s @ %s: pass %d is %s, plan says %s", k.Name, lvl, i, st.Name, names[i])
				}
			}
		}
	}
}

// TestPassPrerequisites checks that hand-assembled pass lists fail with a
// structured diagnostic rather than a crash when run out of order.
func TestPassPrerequisites(t *testing.T) {
	cases := [][]string{
		{"check"},
		{"parse", "build-ir"},
		{"parse", "check", "conflict"},
		{"parse", "check", "build-ir", "cycle-detect"},
		{"parse", "check", "build-ir", "conflict", "sync-analysis"},
		{"parse", "check", "build-ir", "split-phase"},
		{"parse", "check", "build-ir", "sync-motion"},
	}
	for _, names := range cases {
		passes, err := pass.ParseList(joinNames(names))
		if err != nil {
			t.Fatal(err)
		}
		ctx := pass.NewContext("func main() { }", pass.Config{Procs: 2})
		pl := &pass.Pipeline{Passes: passes}
		stats, err := pl.Run(ctx)
		if err == nil {
			t.Errorf("pass list %v: expected prerequisite error", names)
			continue
		}
		if !ctx.Diags.HasErrors() {
			t.Errorf("pass list %v: error not recorded in diagnostics", names)
		}
		if len(stats) != len(names) {
			t.Errorf("pass list %v: %d stats, want %d (failing pass included)", names, len(stats), len(names))
		}
	}
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}
