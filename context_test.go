package splitc

import (
	"context"
	"errors"
	"testing"

	"repro/internal/progen"
)

// TestCompileContextCanceled pins the service-facing cancellation
// contract: a canceled context aborts the pipeline at a pass boundary
// with an error that wraps the context cause.
func TestCompileContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := progen.Generate(1, progen.Options{Procs: 4})
	_, err := CompileContext(ctx, src, Options{Procs: 4, Level: LevelOneWay})
	if err == nil {
		t.Fatal("CompileContext with canceled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, does not wrap context.Canceled", err)
	}
}

// TestCompileContextBackground pins that a plain background context
// changes nothing: same artifacts as the context-free entry point.
func TestCompileContextBackground(t *testing.T) {
	src := progen.Generate(2, progen.Options{Procs: 4})
	want := MustCompile(src, Options{Procs: 4, Level: LevelOneWay})
	got, err := CompileContext(context.Background(), src, Options{Procs: 4, Level: LevelOneWay})
	if err != nil {
		t.Fatal(err)
	}
	if got.Target.String() != want.Target.String() {
		t.Fatal("CompileContext(Background) differs from Compile")
	}
	if got.Analysis.D.Size() != want.Analysis.D.Size() {
		t.Fatal("analysis differs between context and plain compile")
	}
}
