// Command pscload is the load generator for the pscd compilation daemon:
// it drives N concurrent clients over a deterministic program mix (the
// five app kernels plus generated programs) and reports throughput,
// latency percentiles, and cache hit rate.
//
// Usage:
//
//	pscload [flags]
//
//	-addr URL         daemon base URL (default http://127.0.0.1:8642)
//	-clients N        concurrent clients (default 32)
//	-duration D       run length (default 5s; ignored when -n is set)
//	-n N              total request budget instead of a duration
//	-procs N          compile-time machine size of every request (default 8)
//	-machine M        cost model (default cm5)
//	-level L          optimization level (default oneway)
//	-seeds N          generated programs mixed in with the app kernels (default 8)
//	-analyze-every N  one /v1/analyze per N compiles (default 0: compiles only)
//	-json             emit the result as JSON instead of text
//
// Assertion flags make pscload a CI gate (exit 1 on violation):
//
//	-max-errors N        tolerated request errors (default 0)
//	-min-throughput R    required requests/second (default 0: off)
//	-min-hit-rate F      required cache hit rate in [0,1] (default 0: off)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8642", "daemon base URL")
	clients := flag.Int("clients", 32, "concurrent clients")
	duration := flag.Duration("duration", 5*time.Second, "run length (ignored when -n is set)")
	requests := flag.Int("n", 0, "total request budget (0: run for -duration)")
	procs := flag.Int("procs", 8, "compile-time machine size")
	machineName := flag.String("machine", "cm5", "cost model")
	level := flag.String("level", "oneway", "optimization level")
	seeds := flag.Int("seeds", 8, "generated programs in the mix")
	analyzeEvery := flag.Int("analyze-every", 0, "one analyze request per N compiles (0: off)")
	jsonOut := flag.Bool("json", false, "emit JSON")
	maxErrors := flag.Int("max-errors", 0, "tolerated request errors")
	minThroughput := flag.Float64("min-throughput", 0, "required requests/second (0: off)")
	minHitRate := flag.Float64("min-hit-rate", 0, "required cache hit rate in [0,1] (0: off)")
	flag.Parse()

	c := client.New(*addr)
	ctx := context.Background()
	if !c.Healthy(ctx) {
		fatal(fmt.Errorf("daemon at %s is not answering /healthz", *addr))
	}

	res, err := serve.RunLoad(ctx, c, serve.LoadConfig{
		Clients:      *clients,
		Requests:     *requests,
		Duration:     *duration,
		Mix:          serve.LoadMix(*procs, *seeds),
		Procs:        *procs,
		Machine:      *machineName,
		Level:        *level,
		AnalyzeEvery: *analyzeEvery,
	})
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(res.Format())
	}

	bad := false
	if res.Errors > *maxErrors {
		fmt.Fprintf(os.Stderr, "pscload: FAIL: %d errors > %d tolerated\n", res.Errors, *maxErrors)
		bad = true
	}
	if *minThroughput > 0 && res.Throughput < *minThroughput {
		fmt.Fprintf(os.Stderr, "pscload: FAIL: throughput %.1f req/s < required %.1f\n", res.Throughput, *minThroughput)
		bad = true
	}
	if *minHitRate > 0 && res.HitRate < *minHitRate {
		fmt.Fprintf(os.Stderr, "pscload: FAIL: hit rate %.2f < required %.2f\n", res.HitRate, *minHitRate)
		bad = true
	}
	if res.Requests == 0 {
		fmt.Fprintln(os.Stderr, "pscload: FAIL: no requests completed")
		bad = true
	}
	if bad {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pscload:", err)
	os.Exit(1)
}
