package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
pkg: repro/internal/interp
BenchmarkInterpEM3D-4     	       5	    260000 ns/op	   56000 B/op	     200 allocs/op
BenchmarkInterpOcean-4    	       5	   5108000 ns/op	   94072 B/op	     389 allocs/op
BenchmarkFigure12-4       	       3	  54000000 ns/op
BenchmarkInterpEM3D-4     	       5	    240000 ns/op	   56000 B/op	     200 allocs/op
BenchmarkEnumerateSC/dekker-4   	     100	     25000 ns/op	         6.000 states	   62418 B/op	     131 allocs/op
PASS
`

const sampleBaseline = `{
  "benchmarks": [
    {"name": "BenchmarkInterpEM3D",
     "after": {"ns_op": 256000, "allocs_op": 199}},
    {"name": "BenchmarkInterpOcean",
     "after": {"ns_op": 1108000, "allocs_op": 389}},
    {"name": "BenchmarkFigure12",
     "after": {"ns_op": 53800000}},
    {"name": "BenchmarkNotRun",
     "after": {"ns_op": 1}}
  ]
}`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	// Repeated runs keep the per-metric minimum (260000 vs 240000).
	em := got["BenchmarkInterpEM3D"]
	if em.NsOp == nil || *em.NsOp != 240000 {
		t.Errorf("EM3D ns/op = %v", em.NsOp)
	}
	if em.AllocsOp == nil || *em.AllocsOp != 200 {
		t.Errorf("EM3D allocs/op = %v", em.AllocsOp)
	}
	fig := got["BenchmarkFigure12"]
	if fig.NsOp == nil || fig.AllocsOp != nil {
		t.Errorf("Figure12 = %+v, want ns/op only", fig)
	}
	// Custom b.ReportMetric units between ns/op and B/op are skipped.
	enum := got["BenchmarkEnumerateSC/dekker"]
	if enum.NsOp == nil || *enum.NsOp != 25000 {
		t.Errorf("EnumerateSC/dekker ns/op = %v", enum.NsOp)
	}
	if enum.AllocsOp == nil || *enum.AllocsOp != 131 {
		t.Errorf("EnumerateSC/dekker allocs/op = %v", enum.AllocsOp)
	}
}

func TestRunGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(sampleBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	failures, err := run(strings.NewReader(sampleBench), []string{base}, 25, &sb)
	if err != nil {
		t.Fatal(err)
	}
	// Ocean regressed ~4.6x in ns/op; everything else is within tolerance.
	if failures != 1 {
		t.Errorf("failures = %d, want 1\n%s", failures, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "FAIL BenchmarkInterpOcean") {
		t.Errorf("missing Ocean failure:\n%s", out)
	}
	if !strings.Contains(out, "skip BenchmarkNotRun") {
		t.Errorf("missing not-run skip:\n%s", out)
	}
	if !strings.Contains(out, "no baseline metric") {
		t.Errorf("missing metric skip for Figure12 allocs:\n%s", out)
	}
}

// TestRunGateWidthSkip: a parallel-pool baseline entry is skipped (not
// failed) when the run's GOMAXPROCS width differs from the width the
// baseline was measured at, and still compared when widths match.
func TestRunGateWidthSkip(t *testing.T) {
	const baselineJSON = `{
  "benchmarks": [
    {"name": "BenchmarkFigure12", "host_cpus": 16, "parallel_pool": true,
     "after": {"ns_op": 10000000}},
    {"name": "BenchmarkInterpEM3D", "host_cpus": 16,
     "after": {"ns_op": 256000}}
  ]
}`
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(baselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	// Width 4 run: Figure12 is 5x slower than baseline (pool 4x narrower),
	// but must be skipped rather than failed. EM3D is width-insensitive
	// (no parallel_pool) and must still be compared — and pass.
	bench := `
BenchmarkFigure12-4     	       3	  50000000 ns/op
BenchmarkInterpEM3D-4   	       5	    250000 ns/op
PASS
`
	var sb strings.Builder
	failures, err := run(strings.NewReader(bench), []string{base}, 25, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if failures != 0 {
		t.Errorf("failures = %d, want 0\n%s", failures, out)
	}
	if !strings.Contains(out, "skip BenchmarkFigure12") || !strings.Contains(out, "parallel width 4, baseline measured at 16") {
		t.Errorf("missing width-mismatch skip:\n%s", out)
	}
	if !strings.Contains(out, "ok   BenchmarkInterpEM3D") {
		t.Errorf("EM3D should still be compared:\n%s", out)
	}

	// Width 16 run: widths match, Figure12 is compared and its 5x
	// regression now fails the gate.
	bench16 := `
BenchmarkFigure12-16     	       3	  50000000 ns/op
PASS
`
	sb.Reset()
	failures, err = run(strings.NewReader(bench16), []string{base}, 25, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 || !strings.Contains(sb.String(), "FAIL BenchmarkFigure12") {
		t.Errorf("width-matched regression not caught (failures=%d):\n%s", failures, sb.String())
	}
}

func TestRunGateNoMatches(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(`{"benchmarks":[{"name":"X","after":{"ns_op":1}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := run(strings.NewReader("PASS\n"), []string{base}, 25, &sb); err == nil {
		t.Error("expected error when nothing matches the baseline")
	}
}
