package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
pkg: repro/internal/interp
BenchmarkInterpEM3D-4     	       5	    260000 ns/op	   56000 B/op	     200 allocs/op
BenchmarkInterpOcean-4    	       5	   5108000 ns/op	   94072 B/op	     389 allocs/op
BenchmarkFigure12-4       	       3	  54000000 ns/op
BenchmarkInterpEM3D-4     	       5	    240000 ns/op	   56000 B/op	     200 allocs/op
BenchmarkEnumerateSC/dekker-4   	     100	     25000 ns/op	         6.000 states	   62418 B/op	     131 allocs/op
PASS
`

const sampleBaseline = `{
  "benchmarks": [
    {"name": "BenchmarkInterpEM3D",
     "after": {"ns_op": 256000, "allocs_op": 199}},
    {"name": "BenchmarkInterpOcean",
     "after": {"ns_op": 1108000, "allocs_op": 389}},
    {"name": "BenchmarkFigure12",
     "after": {"ns_op": 53800000}},
    {"name": "BenchmarkNotRun",
     "after": {"ns_op": 1}}
  ]
}`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	// Repeated runs keep the per-metric minimum (260000 vs 240000).
	em := got["BenchmarkInterpEM3D"]
	if em.NsOp == nil || *em.NsOp != 240000 {
		t.Errorf("EM3D ns/op = %v", em.NsOp)
	}
	if em.AllocsOp == nil || *em.AllocsOp != 200 {
		t.Errorf("EM3D allocs/op = %v", em.AllocsOp)
	}
	fig := got["BenchmarkFigure12"]
	if fig.NsOp == nil || fig.AllocsOp != nil {
		t.Errorf("Figure12 = %+v, want ns/op only", fig)
	}
	// Custom b.ReportMetric units between ns/op and B/op are skipped.
	enum := got["BenchmarkEnumerateSC/dekker"]
	if enum.NsOp == nil || *enum.NsOp != 25000 {
		t.Errorf("EnumerateSC/dekker ns/op = %v", enum.NsOp)
	}
	if enum.AllocsOp == nil || *enum.AllocsOp != 131 {
		t.Errorf("EnumerateSC/dekker allocs/op = %v", enum.AllocsOp)
	}
}

func TestRunGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(sampleBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	failures, err := run(strings.NewReader(sampleBench), []string{base}, 25, &sb)
	if err != nil {
		t.Fatal(err)
	}
	// Ocean regressed ~4.6x in ns/op; everything else is within tolerance.
	if failures != 1 {
		t.Errorf("failures = %d, want 1\n%s", failures, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "FAIL BenchmarkInterpOcean") {
		t.Errorf("missing Ocean failure:\n%s", out)
	}
	if !strings.Contains(out, "skip BenchmarkNotRun") {
		t.Errorf("missing not-run skip:\n%s", out)
	}
	if !strings.Contains(out, "no baseline metric") {
		t.Errorf("missing metric skip for Figure12 allocs:\n%s", out)
	}
}

func TestRunGateNoMatches(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(`{"benchmarks":[{"name":"X","after":{"ns_op":1}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := run(strings.NewReader("PASS\n"), []string{base}, 25, &sb); err == nil {
		t.Error("expected error when nothing matches the baseline")
	}
}
