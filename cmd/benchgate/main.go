// Command benchgate is the benchmark-regression gate: it parses `go test
// -bench` output and compares ns/op and allocs/op against the "after"
// blocks of the checked-in baseline files (BENCH_analysis.json,
// BENCH_interp.json), failing when a benchmark regresses beyond the
// tolerance. Improvements never fail; benchmarks absent from the run or
// metrics absent from a baseline are reported and skipped.
//
// When a benchmark appears several times in the input (go test -count=N),
// the gate keeps the minimum of each metric: the minimum is the standard
// noise-robust estimate of a benchmark's true cost, which is what lets a
// tight tolerance hold on shared CI runners.
//
// Usage:
//
//	go test -bench=. -benchtime=3x -count=3 ./... | benchgate baseline.json...
//
//	-in FILE     read benchmark output from FILE instead of stdin
//	-tol PCT     allowed regression percentage (default 25)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baseline mirrors the checked-in BENCH_*.json structure; only the
// benchmark names and their "after" metrics matter to the gate.
type baseline struct {
	Benchmarks []struct {
		Name  string   `json:"name"`
		After *metrics `json:"after"`
		// HostCPUs records the CPU count of the host the baseline was
		// measured on; ParallelPool marks entries whose cost depends on
		// the benchmark's parallel width (worker-pool grids). A
		// parallel-pool entry is only comparable on a host of the same
		// width — the gate skips it otherwise instead of misreading a
		// width change as a regression.
		HostCPUs     int  `json:"host_cpus"`
		ParallelPool bool `json:"parallel_pool"`
	} `json:"benchmarks"`
}

// metrics holds the comparable numbers; pointers distinguish a metric the
// baseline simply does not record (e.g. allocs of a wall-clock-only entry).
// width is the `-N` GOMAXPROCS suffix of the measured run (0 if absent).
type metrics struct {
	NsOp     *float64 `json:"ns_op"`
	AllocsOp *float64 `json:"allocs_op"`
	width    int
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkInterpOcean-4   5   1108000 ns/op   94072 B/op   389 allocs/op".
// Custom b.ReportMetric units (e.g. the model checker's "states") may
// appear between ns/op and the allocation columns and are skipped.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([\d.]+) ns/op(?:\s+(?:[\d.]+ \S+\s+)*?([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

// parseBench extracts name -> metrics from benchmark output. The trailing
// -N GOMAXPROCS suffix is stripped from the name (so it matches the
// baselines) but kept as the run's parallel width, and repeated runs of
// one benchmark keep the per-metric minimum.
func parseBench(r io.Reader) (map[string]metrics, error) {
	out := make(map[string]metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		got := metrics{NsOp: &ns}
		if m[2] != "" {
			got.width, _ = strconv.Atoi(m[2])
		}
		if m[5] != "" {
			if al, err := strconv.ParseFloat(m[5], 64); err == nil {
				got.AllocsOp = &al
			}
		}
		if prev, ok := out[m[1]]; ok {
			got.NsOp = minMetric(prev.NsOp, got.NsOp)
			got.AllocsOp = minMetric(prev.AllocsOp, got.AllocsOp)
		}
		out[m[1]] = got
	}
	return out, sc.Err()
}

// minMetric returns the smaller of two optional metric values.
func minMetric(a, b *float64) *float64 {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case *a < *b:
		return a
	default:
		return b
	}
}

// check compares one metric and returns its report line plus whether it
// regressed beyond tol percent. A missing side skips the comparison.
func check(name, metric string, base, got *float64, tol float64) (string, bool) {
	switch {
	case base == nil:
		return fmt.Sprintf("skip %-42s %-9s no baseline metric", name, metric), false
	case got == nil:
		return fmt.Sprintf("skip %-42s %-9s not measured in this run", name, metric), false
	}
	delta := 0.0
	if *base > 0 {
		delta = (*got - *base) / *base * 100
	}
	status, bad := "ok  ", false
	if delta > tol {
		status, bad = "FAIL", true
	}
	return fmt.Sprintf("%s %-42s %-9s base %14.0f  got %14.0f  %+6.1f%%",
		status, name, metric, *base, *got, delta), bad
}

func run(benchOut io.Reader, baselineFiles []string, tol float64, w io.Writer) (int, error) {
	got, err := parseBench(benchOut)
	if err != nil {
		return 0, fmt.Errorf("reading benchmark output: %w", err)
	}
	failures := 0
	compared := 0
	for _, file := range baselineFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			return 0, err
		}
		var base baseline
		if err := json.Unmarshal(data, &base); err != nil {
			return 0, fmt.Errorf("%s: %w", file, err)
		}
		for _, b := range base.Benchmarks {
			if b.After == nil {
				continue
			}
			cur, ok := got[b.Name]
			if !ok {
				fmt.Fprintf(w, "skip %-42s           not in this run\n", b.Name)
				continue
			}
			if b.ParallelPool && b.HostCPUs != 0 && cur.width != 0 && cur.width != b.HostCPUs {
				fmt.Fprintf(w, "skip %-42s           parallel width %d, baseline measured at %d\n",
					b.Name, cur.width, b.HostCPUs)
				continue
			}
			for _, m := range []struct {
				metric    string
				base, got *float64
			}{
				{"ns/op", b.After.NsOp, cur.NsOp},
				{"allocs/op", b.After.AllocsOp, cur.AllocsOp},
			} {
				line, bad := check(b.Name, m.metric, m.base, m.got, tol)
				fmt.Fprintln(w, line)
				if bad {
					failures++
				}
				if m.base != nil && m.got != nil {
					compared++
				}
			}
		}
	}
	fmt.Fprintf(w, "benchgate: %d comparisons, %d regressions beyond %.0f%%\n", compared, failures, tol)
	if compared == 0 {
		return 0, fmt.Errorf("no benchmark matched any baseline entry")
	}
	return failures, nil
}

func main() {
	in := flag.String("in", "", "benchmark output file (default stdin)")
	tol := flag.Float64("tol", 25, "allowed regression percentage")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [flags] baseline.json...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	failures, err := run(src, flag.Args(), *tol, os.Stdout)
	if err != nil {
		fatal(err)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
