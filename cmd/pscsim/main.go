// Command pscsim compiles a MiniSplit program and runs it on a simulated
// distributed-memory machine, printing the program's output, final shared
// memory, and performance statistics.
//
// Usage:
//
//	pscsim [flags] file.ms
//
//	-procs N       number of processors (default 8)
//	-machine M     cm5 | t3d | dash | ideal (default cm5)
//	-level L       blocking | baseline | pipelined | oneway (default oneway)
//	-cse           enable communication elimination
//	-jitter F      network latency jitter fraction (default 0)
//	-seed N        jitter seed
//	-sc            also run the sequentially consistent oracle and compare
//	-mem           print final shared memory
//	-stats         print per-processor statistics
//	-engine E      block-execution engine: vm | walk (default vm)
//	-dump-bytecode print the compiled bytecode before running
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/vm"
)

func main() {
	procs := flag.Int("procs", 8, "number of processors")
	mach := flag.String("machine", "cm5", "machine model: cm5|t3d|dash|ideal")
	level := flag.String("level", "oneway", "optimization level")
	cse := flag.Bool("cse", false, "enable communication elimination")
	jitter := flag.Float64("jitter", 0, "network latency jitter fraction")
	seed := flag.Int64("seed", 0, "jitter seed")
	sc := flag.Bool("sc", false, "compare against the sequentially consistent oracle")
	mem := flag.Bool("mem", false, "print final shared memory")
	stats := flag.Bool("stats", false, "print per-processor statistics")
	engine := flag.String("engine", "vm", "block-execution engine: vm|walk")
	dumpBC := flag.Bool("dump-bytecode", false, "print the compiled bytecode before running")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pscsim [flags] file.ms")
		flag.PrintDefaults()
		os.Exit(2)
	}
	text, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	lvl, err := splitc.ParseLevel(*level)
	if err != nil {
		fatal(err)
	}
	prog, err := splitc.Compile(string(text), splitc.Options{Procs: *procs, Level: lvl, CSE: *cse})
	if err != nil {
		fatal(err)
	}
	cfg, err := machine.ByName(*mach, *procs)
	if err != nil {
		fatal(err)
	}
	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	if *dumpBC {
		bc, err := vm.Compiled(prog.Target)
		if err != nil {
			fatal(fmt.Errorf("bytecode: %w", err))
		}
		fmt.Print(bc.Disasm())
	}
	res, err := prog.Run(cfg, interp.RunOptions{Jitter: *jitter, Seed: *seed, Engine: eng})
	if err != nil {
		fatal(err)
	}
	for _, line := range res.Prints {
		fmt.Println(line)
	}
	fmt.Printf("time: %.0f cycles on %s x%d (level %s), %d messages\n",
		res.Time, cfg.Name, cfg.Procs, lvl, res.Messages)
	if *stats {
		for i, st := range res.Stats {
			util := 0.0
			if st.Cycles > 0 {
				util = st.Busy / st.Cycles * 100
			}
			fmt.Printf("p%-3d cycles %10.0f  busy %5.1f%%  gets %5d  puts %5d  stores %5d  local %5d  acks %5d  barriers %3d  locks %3d\n",
				i, st.Cycles, util, st.Gets, st.Puts, st.Stores, st.LocalAcc, st.AcksRecv, st.Barriers, st.LockOps)
		}
	}
	if *mem {
		fmt.Println("memory:", interp.FormatSnapshot(res.Memory))
	}
	if *sc {
		oracle, err := prog.RunSC(*seed)
		if err != nil {
			fatal(fmt.Errorf("sc oracle: %w", err))
		}
		if interp.FormatSnapshot(oracle.Memory) == interp.FormatSnapshot(res.Memory) {
			fmt.Println("sc-check: final memory matches the sequentially consistent oracle")
		} else {
			fmt.Println("sc-check: MISMATCH with the sequentially consistent oracle")
			fmt.Println("  weak:", interp.FormatSnapshot(res.Memory))
			fmt.Println("  sc:  ", interp.FormatSnapshot(oracle.Memory))
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pscsim:", err)
	os.Exit(1)
}
