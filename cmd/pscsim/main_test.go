package main

import "testing"

func TestParseLevel(t *testing.T) {
	cases := map[string]bool{
		"blocking": true, "baseline": true, "pipelined": true,
		"oneway": true, "unsafe": true, "bogus": false, "": false,
	}
	for name, ok := range cases {
		_, err := parseLevel(name)
		if ok && err != nil {
			t.Errorf("parseLevel(%q): %v", name, err)
		}
		if !ok && err == nil {
			t.Errorf("parseLevel(%q): expected error", name)
		}
	}
}

func TestParseMachine(t *testing.T) {
	for _, name := range []string{"cm5", "t3d", "dash", "ideal"} {
		cfg, err := parseMachine(name, 8)
		if err != nil {
			t.Errorf("parseMachine(%q): %v", name, err)
		}
		if cfg.Procs != 8 {
			t.Errorf("parseMachine(%q): procs = %d", name, cfg.Procs)
		}
	}
	if _, err := parseMachine("cray", 8); err == nil {
		t.Error("unknown machine should fail")
	}
}
