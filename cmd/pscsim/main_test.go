package main

import (
	"testing"

	"repro"
	"repro/internal/machine"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]bool{
		"blocking": true, "baseline": true, "pipelined": true,
		"oneway": true, "unsafe": true, "bogus": false, "": false,
	}
	for name, ok := range cases {
		_, err := splitc.ParseLevel(name)
		if ok && err != nil {
			t.Errorf("ParseLevel(%q): %v", name, err)
		}
		if !ok && err == nil {
			t.Errorf("ParseLevel(%q): expected error", name)
		}
	}
}

func TestMachineByName(t *testing.T) {
	for _, name := range machine.Names() {
		cfg, err := machine.ByName(name, 8)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if cfg.Procs != 8 {
			t.Errorf("ByName(%q): procs = %d", name, cfg.Procs)
		}
	}
	if _, err := machine.ByName("cray", 8); err == nil {
		t.Error("unknown machine should fail")
	}
}
