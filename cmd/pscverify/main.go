// Command pscverify is the dynamic sequential-consistency verifier: it
// compiles a MiniSplit program at one or more optimization levels, runs
// each compile across a grid of seeded schedules (latency jitter plus
// legal event-order perturbation) with the execution tap attached, and
// checks that every recorded happens-before trace embeds into a total
// order and that every outcome is one a sequentially consistent execution
// could produce. Exit status 1 means a violation was found.
//
// Usage:
//
//	pscverify [flags] file.ms       verify one program
//	pscverify -apps all             verify the five paper kernels
//	pscverify -progen 50            verify 50 generated programs
//
//	-procs N        number of processors (default 4)
//	-machine M      cm5 | t3d | dash | jmachine | ideal (default cm5)
//	-level L        blocking | baseline | pipelined | oneway | unsafe,
//	                comma-separated, or "all" (default all: the three
//	                optimization levels the paper compares)
//	-schedules N    schedules per level (default 6)
//	-cse            enable communication elimination in the compiles
//	-det            assert the program is schedule-deterministic and
//	                compare every run against the blocking reference
//	                (implied by -apps)
//	-scale N        problem scale for -apps (default 1)
//	-weaken PAIRS   delay pairs codegen must drop, e.g. "0-1,3-4" — seeds
//	                sequential-consistency violations the verifier must
//	                then catch
//	-list-delays    print the program's enforced delay pairs, marking the
//	                ones whose removal changes the emitted code (candidates
//	                for -weaken), then exit
//	-max-states N   state budget for the exact SC outcome enumeration
//	                (default: the verifier's 1,000,000-state budget)
//	-enum-stats     print the model checker's exploration statistics
//	                (states, transitions, deterministic steps, branch
//	                points, peak depth) and the partial-order-reduction
//	                factor against the unreduced reference enumerator
//	-engine E       block-execution engine for every verified run:
//	                vm | walk (default vm)
//	-dump-bytecode  print the compiled bytecode of the file under
//	                verification at each requested level, then exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	splitc "repro"
	"repro/internal/apps"
	"repro/internal/delay"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/progen"
	"repro/internal/scverify"
	"repro/internal/vm"
)

func main() {
	procs := flag.Int("procs", 4, "number of processors")
	mach := flag.String("machine", "cm5", "machine model: "+strings.Join(machine.Names(), "|"))
	level := flag.String("level", "all", "optimization level(s), comma-separated or \"all\"")
	schedules := flag.Int("schedules", 6, "schedules per level")
	cse := flag.Bool("cse", false, "enable communication elimination")
	det := flag.Bool("det", false, "assert schedule determinism against the blocking reference")
	scale := flag.Int("scale", 1, "problem scale for -apps")
	weaken := flag.String("weaken", "", "delay pairs to drop from codegen, e.g. \"0-1,3-4\"")
	listDelays := flag.Bool("list-delays", false, "list enforced delay pairs and exit")
	appsFlag := flag.String("apps", "", "verify paper kernel(s): a kernel name or \"all\"")
	progenN := flag.Int("progen", 0, "verify N generated programs instead of a file")
	maxStates := flag.Int("max-states", 0, "state budget for the exact SC enumeration (0 = verifier default)")
	enumStats := flag.Bool("enum-stats", false, "print SC model-checker exploration statistics")
	engineFlag := flag.String("engine", "vm", "block-execution engine: vm|walk")
	dumpBC := flag.Bool("dump-bytecode", false, "print the compiled bytecode at each level and exit")
	flag.Parse()

	levels, err := splitc.ParseLevels(*level)
	if err != nil {
		fatal(err)
	}
	engine, err := interp.ParseEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}
	pairs, err := parseWeaken(*weaken)
	if err != nil {
		fatal(err)
	}
	cfg, err := machine.ByName(*mach, *procs)
	if err != nil {
		fatal(err)
	}
	opts := scverify.Options{
		Procs:         *procs,
		Levels:        levels,
		Machine:       cfg,
		Schedules:     scverify.Schedules(*schedules),
		Deterministic: *det,
		Weaken:        pairs,
		CSE:           *cse,
		EnumBudget:    *maxStates,
		Engine:        engine,
	}
	showEnumStats = *enumStats

	switch {
	case *appsFlag != "":
		os.Exit(runApps(*appsFlag, *scale, opts))
	case *progenN > 0:
		os.Exit(runProgen(*progenN, opts))
	default:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: pscverify [flags] file.ms | -apps all | -progen N")
			flag.PrintDefaults()
			os.Exit(2)
		}
		text, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if *listDelays {
			lvl := splitc.LevelPipelined
			if len(levels) == 1 {
				lvl = levels[0]
			}
			if err := printDelays(string(text), *procs, lvl); err != nil {
				fatal(err)
			}
			return
		}
		if *dumpBC {
			if err := dumpBytecode(string(text), *procs, *cse, levels); err != nil {
				fatal(err)
			}
			return
		}
		os.Exit(runOne(flag.Arg(0), string(text), opts))
	}
}

// showEnumStats mirrors -enum-stats for the run helpers.
var showEnumStats bool

// printEnumStats reports the model checker's effort on one verified
// program, plus the partial-order-reduction factor measured against the
// unreduced reference enumerator when the latter fits the same budget.
func printEnumStats(src string, opts scverify.Options, rep *scverify.Report) {
	if rep.Enum == nil {
		return
	}
	s := rep.Enum
	fmt.Printf("enum: states=%d transitions=%d local-steps=%d branches=%d peak-frontier=%d outcomes=%d",
		s.States, s.Transitions, s.LocalSteps, s.Branches, s.PeakFrontier, s.Outcomes)
	if s.Truncated {
		fmt.Printf(" TRUNCATED\n")
		return
	}
	budget := opts.EnumBudget
	if budget <= 0 {
		budget = 1_000_000
	}
	fn := ir.MustBuild(src, ir.BuildOptions{Procs: opts.Procs})
	if _, ref, ok := interp.EnumerateSCReferenceStats(fn, opts.Procs, budget); ok {
		fmt.Printf(" por-reduction=%.1fx (reference: %d states)\n", s.ReductionFactor(ref.States), ref.States)
	} else {
		fmt.Printf(" por-reduction=>%.1fx (reference over budget at %d states)\n",
			s.ReductionFactor(ref.States), ref.States)
	}
}

// runOne verifies one source program and prints its report.
func runOne(name, src string, opts scverify.Options) int {
	rep, err := scverify.Verify(src, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s:\n%s", name, rep.Summary())
	if showEnumStats {
		printEnumStats(src, opts, rep)
	}
	printViolations(rep)
	if !rep.OK() {
		return 1
	}
	oracle := "exact SC outcome oracle"
	if opts.Deterministic {
		oracle = "blocking-reference comparison"
	} else if !rep.ExactOracle {
		oracle = "trace check only (SC enumeration over budget)"
	}
	fmt.Printf("ok: %d runs sequentially consistent (%s)\n", rep.Runs(), oracle)
	return 0
}

// runApps verifies the named paper kernel ("all" for every kernel)
// deterministically against its sequential oracle.
func runApps(name string, scale int, opts scverify.Options) int {
	kernels := apps.All()
	if name != "all" {
		k := apps.ByName(name)
		if k == nil {
			fatal(fmt.Errorf("unknown kernel %q", name))
		}
		kernels = []apps.Kernel{*k}
	}
	opts.Deterministic = true
	status := 0
	for _, k := range kernels {
		k := k
		procs := opts.Procs
		opts.Validate = func(mem map[string][]ir.Value) error {
			return k.Validate(mem, procs, scale)
		}
		rep, err := scverify.Verify(k.Source(procs, scale), opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", k.Name, err))
		}
		ok := "ok"
		if !rep.OK() {
			ok = "FAIL"
			status = 1
		}
		fmt.Printf("%-8s %s  %d runs\n%s", k.Name, ok, rep.Runs(), rep.Summary())
		printViolations(rep)
	}
	return status
}

// runProgen verifies n generated programs (seeds 0..n-1) against the
// exhaustive SC outcome oracle where it fits the budget.
func runProgen(n int, opts scverify.Options) int {
	status, exact := 0, 0
	for seed := int64(0); seed < int64(n); seed++ {
		src := progen.Generate(seed, progen.Options{Procs: opts.Procs})
		rep, err := scverify.Verify(src, opts)
		if err != nil {
			fatal(fmt.Errorf("seed %d: %w", seed, err))
		}
		if rep.ExactOracle {
			exact++
		}
		if showEnumStats {
			fmt.Printf("seed %d: ", seed)
			printEnumStats(src, opts, rep)
		}
		if !rep.OK() {
			status = 1
			fmt.Printf("seed %d FAIL:\n%s", seed, rep.Summary())
			printViolations(rep)
			fmt.Printf("source:\n%s", src)
		}
	}
	if status == 0 {
		fmt.Printf("ok: %d generated programs verified (%d with exact SC oracle)\n", n, exact)
	}
	return status
}

// dumpBytecode prints the VM image the verifier's runs would execute —
// one disassembly per requested optimization level, since each level
// compiles to different target code.
func dumpBytecode(src string, procs int, cse bool, levels []splitc.Level) error {
	for _, lvl := range levels {
		prog, err := splitc.Compile(src, splitc.Options{Procs: procs, Level: lvl, CSE: cse})
		if err != nil {
			return err
		}
		bc, err := vm.Compiled(prog.Target)
		if err != nil {
			return fmt.Errorf("%s: bytecode: %w", lvl, err)
		}
		fmt.Printf("== level %s ==\n%s", lvl, bc.Disasm())
	}
	return nil
}

// printDelays lists the enforced delay pairs of the program's analysis at
// the given level, marking the pairs whose individual removal changes the
// emitted code — the candidates worth passing to -weaken.
func printDelays(src string, procs int, lvl splitc.Level) error {
	prog, err := splitc.Compile(src, splitc.Options{Procs: procs, Level: lvl})
	if err != nil {
		return err
	}
	effective, err := scverify.EffectiveWeakenings(src, procs, lvl)
	if err != nil {
		return err
	}
	eff := make(map[delay.Pair]bool, len(effective))
	for _, p := range effective {
		eff[p] = true
	}
	fmt.Printf("%d enforced delay pairs at level %s (%d accesses in %d precedence classes; * = removal changes emitted code):\n",
		prog.Analysis.D.Size(), lvl, len(prog.Fn.Accesses), prog.Analysis.RClasses)
	for _, p := range prog.Analysis.D.Pairs() {
		mark := " "
		if eff[p] {
			mark = "*"
		}
		fmt.Printf("%s %d-%d  %s -> %s\n", mark, p.A, p.B,
			prog.Fn.AccessByID(p.A).Site(), prog.Fn.AccessByID(p.B).Site())
	}
	return nil
}

func printViolations(rep *scverify.Report) {
	for _, lr := range rep.Levels {
		for _, v := range lr.Violations {
			fmt.Print(v.String())
		}
		for _, e := range lr.OutcomeErrs {
			fmt.Println(e.Error())
		}
	}
}

// parseWeaken parses "0-1,3-4" into delay pairs.
func parseWeaken(s string) ([]delay.Pair, error) {
	if s == "" {
		return nil, nil
	}
	var out []delay.Pair
	for _, part := range strings.Split(s, ",") {
		a, b, ok := strings.Cut(strings.TrimSpace(part), "-")
		if !ok {
			return nil, fmt.Errorf("bad weaken pair %q: want A-B", part)
		}
		pa, err1 := strconv.Atoi(a)
		pb, err2 := strconv.Atoi(b)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad weaken pair %q: want integer access ids", part)
		}
		out = append(out, delay.Pair{A: pa, B: pb})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pscverify:", err)
	os.Exit(1)
}
