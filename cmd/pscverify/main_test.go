package main

import (
	"testing"

	splitc "repro"
	"repro/internal/delay"
)

func TestParseLevels(t *testing.T) {
	if lv, err := splitc.ParseLevels("all"); err != nil || lv != nil {
		t.Errorf("splitc.ParseLevels(all) = %v, %v; want nil default", lv, err)
	}
	lv, err := splitc.ParseLevels("blocking, oneway")
	if err != nil {
		t.Fatal(err)
	}
	want := []splitc.Level{splitc.LevelBlocking, splitc.LevelOneWay}
	if len(lv) != len(want) || lv[0] != want[0] || lv[1] != want[1] {
		t.Errorf("parseLevels = %v, want %v", lv, want)
	}
	if _, err := splitc.ParseLevels("bogus"); err == nil {
		t.Error("expected error for unknown level")
	}
}

func TestParseWeaken(t *testing.T) {
	ps, err := parseWeaken("0-1, 3-4")
	if err != nil {
		t.Fatal(err)
	}
	want := []delay.Pair{{A: 0, B: 1}, {A: 3, B: 4}}
	if len(ps) != 2 || ps[0] != want[0] || ps[1] != want[1] {
		t.Errorf("parseWeaken = %v, want %v", ps, want)
	}
	for _, bad := range []string{"1", "a-b", "1-"} {
		if _, err := parseWeaken(bad); err == nil {
			t.Errorf("parseWeaken(%q): expected error", bad)
		}
	}
	if ps, err := parseWeaken(""); err != nil || ps != nil {
		t.Errorf("parseWeaken(\"\") = %v, %v; want nil", ps, err)
	}
}
