// Command pscd is the compilation-as-a-service daemon: a long-running
// HTTP/JSON server exposing the splitc pipeline as /v1/compile,
// /v1/analyze, and /v1/verify, with singleflight deduplication, a bounded
// worker pool, and a content-addressed artifact cache (internal/serve).
//
// Usage:
//
//	pscd [flags]
//
//	-addr HOST:PORT   listen address (default 127.0.0.1:8642)
//	-workers N        concurrent pipeline executions (default: one per CPU)
//	-cache BACKEND    mem | disk (default mem)
//	-cache-dir DIR    artifact directory for -cache disk (default .pscd-cache)
//	-cache-bytes N    in-memory cache budget in bytes (default 256 MiB)
//	-timeout D        default per-request deadline (default 30s)
//	-max-timeout D    largest per-request deadline a client may ask for
//	-max-body N       request size limit in bytes (default 8 MiB)
//	-drain D          how long to wait for in-flight requests on SIGTERM
//	-quiet            suppress per-request logs
//
// The daemon logs one JSON line per request (endpoint, key, cache
// hit/miss/dedup, status, latency, per-pass wall time) to stderr. On
// SIGINT/SIGTERM it stops accepting work (503), drains in-flight requests
// for -drain, then exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8642", "listen address")
	workers := flag.Int("workers", 0, "concurrent pipeline executions (0: one per CPU)")
	cache := flag.String("cache", "mem", "artifact cache backend: mem|disk")
	cacheDir := flag.String("cache-dir", ".pscd-cache", "artifact directory for -cache disk")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory cache budget in bytes (0: 256 MiB)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "largest per-request deadline a client may request")
	maxBody := flag.Int64("max-body", 8<<20, "request size limit in bytes")
	drain := flag.Duration("drain", 10*time.Second, "in-flight drain budget on SIGTERM")
	quiet := flag.Bool("quiet", false, "suppress per-request logs")
	flag.Parse()

	var store serve.Store
	switch *cache {
	case "mem":
		store = serve.NewMemStore(*cacheBytes)
	case "disk":
		ds, err := serve.NewDiskStore(*cacheDir)
		if err != nil {
			fatal(err)
		}
		store = ds
	default:
		fatal(fmt.Errorf("unknown cache backend %q (mem|disk)", *cache))
	}

	logger := log.New(os.Stderr, "", 0)
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}
	srv := serve.New(serve.Config{
		Workers:         *workers,
		Store:           store,
		MaxRequestBytes: *maxBody,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		Logger:          reqLogger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	logger.Printf(`{"event":"listening","addr":%q,"workers":%d,"cache":%q}`,
		ln.Addr().String(), *workers, *cache)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		// Graceful drain: refuse new work, let in-flight requests finish
		// within the drain budget, then stop the worker pool.
		logger.Printf(`{"event":"draining","budget":%q}`, drain.String())
		srv.SetDraining()
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := hs.Shutdown(dctx)
		cancel()
		srv.Close()
		if err != nil {
			logger.Printf(`{"event":"drain_incomplete","error":%q}`, err.Error())
			os.Exit(1)
		}
		logger.Print(`{"event":"stopped"}`)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pscd:", err)
	os.Exit(1)
}
