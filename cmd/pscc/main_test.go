package main

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/pass"
)

func plan(t *testing.T, opts splitc.Options) *pass.Pipeline {
	t.Helper()
	cfg, err := splitc.PipelineConfig(opts)
	if err != nil {
		t.Fatal(err)
	}
	return &pass.Pipeline{Passes: pass.Plan(cfg)}
}

func TestResolveDumpsDefaultsToTarget(t *testing.T) {
	pl := plan(t, splitc.Options{Procs: 8, Level: splitc.LevelOneWay})
	dumps, err := resolveDumps(false, false, true, false, "", pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 1 || !dumps["insert-syncs"] {
		t.Errorf("default dumps = %v, want only the final pass (insert-syncs)", dumps)
	}
}

func TestResolveDumpsTargetYields(t *testing.T) {
	// Another dump requested without -dump-target set explicitly: the
	// default target dump must switch off.
	pl := plan(t, splitc.Options{Procs: 8, Level: splitc.LevelOneWay})
	dumps, err := resolveDumps(true, true, true, false, "", pl)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"parse": true, "build-ir": true}
	if len(dumps) != len(want) || !dumps["parse"] || !dumps["build-ir"] {
		t.Errorf("dumps = %v, want %v", dumps, want)
	}
	// Explicitly set -dump-target composes with the others.
	dumps, err = resolveDumps(true, false, true, true, "", pl)
	if err != nil {
		t.Fatal(err)
	}
	if !dumps["parse"] || !dumps["insert-syncs"] {
		t.Errorf("dumps = %v, want parse and insert-syncs", dumps)
	}
}

func TestResolveDumpsDumpAfter(t *testing.T) {
	pl := plan(t, splitc.Options{Procs: 8, Level: splitc.LevelOneWay})
	dumps, err := resolveDumps(false, false, true, false, "sync-motion, one-way", pl)
	if err != nil {
		t.Fatal(err)
	}
	if !dumps["sync-motion"] || !dumps["one-way"] || dumps["insert-syncs"] {
		t.Errorf("dumps = %v, want sync-motion and one-way only", dumps)
	}
	if _, err := resolveDumps(false, false, true, false, "no-such-pass", pl); err == nil {
		t.Error("unknown -dump-after pass should fail")
	}
	// A registered pass that is not in this pipeline is also an error:
	// LevelBlocking plans no one-way pass.
	blocking := plan(t, splitc.Options{Procs: 8, Level: splitc.LevelBlocking})
	if _, err := resolveDumps(false, false, true, false, "one-way", blocking); err == nil {
		t.Error("-dump-after for a pass outside the pipeline should fail")
	}
}

func TestFormatPassStats(t *testing.T) {
	out := formatPassStats([]pass.Stat{
		{Name: "parse", Counters: map[string]int{"decls": 3, "funcs": 1}},
		{Name: "sync-analysis", Counters: map[string]int{"final_delays": 2}},
	})
	if !strings.Contains(out, "== pass stats ==") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "decls=3 funcs=1") {
		t.Errorf("counters not sorted/joined:\n%s", out)
	}
	if !strings.Contains(out, "sync-analysis") {
		t.Errorf("missing pass row:\n%s", out)
	}
}
