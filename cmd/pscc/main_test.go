package main

import "testing"

func TestParseLevel(t *testing.T) {
	for _, name := range []string{"blocking", "baseline", "pipelined", "oneway", "unsafe"} {
		if _, err := parseLevel(name); err != nil {
			t.Errorf("parseLevel(%q): %v", name, err)
		}
	}
	if _, err := parseLevel("O3"); err == nil {
		t.Error("unknown level should fail")
	}
}
