// Command pscc is the MiniSplit compiler driver: it runs the instrumented
// pass pipeline over a program, printing the requested intermediate results.
//
// Usage:
//
//	pscc [flags] file.ms
//
//	-procs N        compile for N processors (default 8)
//	-level L        blocking | baseline | pipelined | oneway (default oneway)
//	-cse            enable communication elimination
//	-exact          exact (exponential) simple-path search
//	-passes LIST    run an explicit comma-separated pass list instead of
//	                the level's planned pipeline
//	-dump-after P   dump compiler state after the named passes (comma list)
//	-dump-ast       dump after parse (the parsed program)
//	-dump-ir        dump after build-ir (the mid-level IR)
//	-dump-target    dump the final generated code (default, unless another
//	                dump is requested)
//	-pass-stats     print per-pass wall time, allocations, and counters
//	-summary        print analysis statistics
//
// Dumps compose: each requested dump prints once, in pipeline order, under
// a "== <pass> ==" header naming the pass it follows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/diag"
	"repro/internal/pass"
	"repro/internal/source"
)

func main() {
	procs := flag.Int("procs", 8, "number of processors")
	level := flag.String("level", "oneway", "optimization level: blocking|baseline|pipelined|oneway")
	cse := flag.Bool("cse", false, "enable communication elimination")
	exact := flag.Bool("exact", false, "exact simple-path search")
	passList := flag.String("passes", "", "explicit comma-separated pass list (default: the level's pipeline)")
	dumpAfter := flag.String("dump-after", "", "dump compiler state after these passes (comma list)")
	dumpAST := flag.Bool("dump-ast", false, "dump the parsed program (after parse)")
	dumpIR := flag.Bool("dump-ir", false, "dump the mid-level IR (after build-ir)")
	dumpTarget := flag.Bool("dump-target", true, "dump the generated split-phase code (after the final pass)")
	passStats := flag.Bool("pass-stats", false, "print per-pass wall time, allocations, and counters")
	summary := flag.Bool("summary", false, "print analysis statistics")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pscc [flags] file.ms")
		flag.PrintDefaults()
		os.Exit(2)
	}
	text, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	lvl, err := splitc.ParseLevel(*level)
	if err != nil {
		fatal(err)
	}
	opts := splitc.Options{Procs: *procs, Level: lvl, CSE: *cse, Exact: *exact}

	pl := &pass.Pipeline{MeasureAllocs: *passStats}
	if *passList != "" {
		pl.Passes, err = pass.ParseList(*passList)
		if err != nil {
			fatal(err)
		}
	} else {
		cfg, err := splitc.PipelineConfig(opts)
		if err != nil {
			fatal(err)
		}
		pl.Passes = pass.Plan(cfg)
	}

	targetSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dump-target" {
			targetSet = true
		}
	})
	dumps, err := resolveDumps(*dumpAST, *dumpIR, *dumpTarget, targetSet, *dumpAfter, pl)
	if err != nil {
		fatal(err)
	}
	pl.Observer = func(p pass.Pass, ctx *pass.Context) {
		if !dumps[p.Name()] {
			return
		}
		fmt.Printf("== %s ==\n", p.Name())
		fmt.Println(dumpState(ctx))
	}

	prog, err := splitc.CompilePipeline(string(text), opts, pl)
	if prog != nil {
		for _, d := range prog.Diags {
			if d.Sev == diag.Warning {
				fmt.Fprintln(os.Stderr, "pscc: "+d.String())
			}
		}
	}
	if err != nil {
		fatal(err)
	}
	if *summary {
		fmt.Println("=== analysis ===")
		fmt.Println(prog.DelaySummary())
		fmt.Printf("codegen: %+v\n", prog.Codegen)
	}
	if *passStats {
		fmt.Print(formatPassStats(prog.Passes))
	}
}

// resolveDumps maps each requested dump onto the pass it should follow.
// The legacy flags are aliases: -dump-ast dumps after parse, -dump-ir after
// build-ir, and -dump-target after the pipeline's final pass. -dump-target
// stays on by default but yields when any other dump is requested without
// it being set explicitly.
func resolveDumps(dumpAST, dumpIR, dumpTarget, targetSet bool, dumpAfter string, pl *pass.Pipeline) (map[string]bool, error) {
	dumps := make(map[string]bool)
	has := func(name string) bool {
		for _, p := range pl.Passes {
			if p.Name() == name {
				return true
			}
		}
		return false
	}
	for _, name := range strings.Split(dumpAfter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := pass.Lookup(name); !ok {
			return nil, fmt.Errorf("-dump-after: unknown pass %q", name)
		}
		if !has(name) {
			return nil, fmt.Errorf("-dump-after: pass %q is not in the pipeline", name)
		}
		dumps[name] = true
	}
	if dumpAST {
		dumps["parse"] = true
	}
	if dumpIR {
		dumps["build-ir"] = true
	}
	if dumpTarget && (targetSet || len(dumps) == 0) {
		dumps[pl.Passes[len(pl.Passes)-1].Name()] = true
	}
	return dumps, nil
}

// dumpState renders the most-derived compiler state available: target code
// once split-phase has run, else the IR, else the parsed program.
func dumpState(ctx *pass.Context) string {
	if p := ctx.Prog(); p != nil {
		return p.String()
	}
	if ctx.Fn != nil {
		return ctx.Fn.String()
	}
	if ctx.AST != nil {
		return source.Print(ctx.AST)
	}
	return "(no state)"
}

// formatPassStats renders the per-pass instrumentation table.
func formatPassStats(stats []pass.Stat) string {
	var b strings.Builder
	b.WriteString("== pass stats ==\n")
	width := 4
	for _, st := range stats {
		if len(st.Name) > width {
			width = len(st.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %12s  %10s  counters\n", width, "pass", "wall", "allocs")
	for _, st := range stats {
		parts := make([]string, 0, len(st.Counters))
		for _, k := range st.CounterNames() {
			parts = append(parts, fmt.Sprintf("%s=%d", k, st.Counters[k]))
		}
		fmt.Fprintf(&b, "%-*s  %12s  %10d  %s\n", width, st.Name, st.Wall, st.Allocs, strings.Join(parts, " "))
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pscc:", err)
	os.Exit(1)
}
