// Command pscc is the MiniSplit compiler driver: it parses, analyzes, and
// compiles a program, printing the requested intermediate results.
//
// Usage:
//
//	pscc [flags] file.ms
//
//	-procs N      compile for N processors (default 8)
//	-level L      blocking | baseline | pipelined | oneway (default oneway)
//	-cse          enable communication elimination
//	-exact        exact (exponential) simple-path search
//	-dump-ast     print the parsed program
//	-dump-ir      print the mid-level IR
//	-dump-target  print the generated split-phase code (default)
//	-summary      print analysis statistics
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/source"
)

func main() {
	procs := flag.Int("procs", 8, "number of processors")
	level := flag.String("level", "oneway", "optimization level: blocking|baseline|pipelined|oneway")
	cse := flag.Bool("cse", false, "enable communication elimination")
	exact := flag.Bool("exact", false, "exact simple-path search")
	dumpAST := flag.Bool("dump-ast", false, "print the parsed program")
	dumpIR := flag.Bool("dump-ir", false, "print the mid-level IR")
	dumpTarget := flag.Bool("dump-target", true, "print the generated split-phase code")
	summary := flag.Bool("summary", false, "print analysis statistics")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pscc [flags] file.ms")
		flag.PrintDefaults()
		os.Exit(2)
	}
	text, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	lvl, err := parseLevel(*level)
	if err != nil {
		fatal(err)
	}
	prog, err := splitc.Compile(string(text), splitc.Options{
		Procs: *procs, Level: lvl, CSE: *cse, Exact: *exact,
	})
	if err != nil {
		fatal(err)
	}
	if *dumpAST {
		fmt.Println("=== AST ===")
		fmt.Println(source.Print(prog.AST))
	}
	if *dumpIR {
		fmt.Println("=== IR ===")
		fmt.Println(prog.IRText())
	}
	if *summary {
		fmt.Println("=== analysis ===")
		fmt.Println(prog.DelaySummary())
		fmt.Printf("codegen: %+v\n", prog.Codegen)
	}
	if *dumpTarget {
		fmt.Println("=== target ===")
		fmt.Println(prog.TargetText())
	}
}

func parseLevel(s string) (splitc.Level, error) {
	switch s {
	case "blocking":
		return splitc.LevelBlocking, nil
	case "baseline":
		return splitc.LevelBaseline, nil
	case "pipelined":
		return splitc.LevelPipelined, nil
	case "oneway":
		return splitc.LevelOneWay, nil
	case "unsafe":
		return splitc.LevelUnsafe, nil
	default:
		return 0, fmt.Errorf("unknown level %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pscc:", err)
	os.Exit(1)
}
