package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

// golden compares one experiment's output against its checked-in golden
// file. The goldens pin the simulated results byte for byte: every cell is
// a deterministic compile+simulate, so any drift is a semantic change in
// the compiler, the analyses, or the cost model and must be reviewed (and
// the golden regenerated deliberately, see testdata/golden).
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got+"\n" != string(want) { // pscbench prints each report with Println
		t.Errorf("%s drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s",
			name, path, got, want)
	}
}

// runGoldens exercises the four golden experiments with the current
// bench.Workers setting.
func runGoldens(t *testing.T) {
	t.Helper()
	out, err := bench.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "table1.txt", out)

	f12, err := bench.RunFigure12(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig12_p16.txt", f12.Format())

	f13, err := bench.RunFigure13([]int{1, 2, 4, 8, 16, 32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig13.txt", f13.Format())

	abl, err := bench.RunDelayAblation(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "ablation_p16.txt", bench.FormatAblation(abl, 16, 1))
}

func TestGoldenSequential(t *testing.T) {
	defer func(w int) { bench.Workers = w }(bench.Workers)
	bench.Workers = 1
	runGoldens(t)
}

// TestGoldenParallel re-runs the goldens with the full worker pool: the
// parallel grids must be byte-identical to the sequential ones.
func TestGoldenParallel(t *testing.T) {
	defer func(w int) { bench.Workers = w }(bench.Workers)
	bench.Workers = 0
	runGoldens(t)
}
