// Command pscbench regenerates the paper's evaluation tables and figures
// at full size.
//
// Usage:
//
//	pscbench [flags]
//
//	-exp E      table1 | fig12 | fig13 | ablation | messages | cse | all (default all)
//	            passes: per-pass optimizer counters for every kernel
//	            (not part of all)
//	            analysis: compiler-side scaling of the delay-set and
//	            synchronization analyses (not part of all; timings are
//	            machine-dependent)
//	            serve: cold vs hot compile latency through the pscd
//	            service stack (not part of all; timings are
//	            machine-dependent)
//	-procs N    processors for fig12/ablation/messages (default 64)
//	-scale N    problem scale (default 1)
//	-parallel   fan the experiment grids across all CPUs; output is
//	            byte-identical to a sequential run
//	-json DIR   also write machine-readable BENCH_<exp>.json files to DIR
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig12|fig13|ablation|messages|cse|passes|bigproc|analysis|serve|all")
	procs := flag.Int("procs", 64, "processors for fig12/ablation/messages")
	scale := flag.Int("scale", 1, "problem scale")
	parallel := flag.Bool("parallel", false, "fan experiment grids across all CPUs (deterministic output)")
	jsonDir := flag.String("json", "", "directory for machine-readable BENCH_<exp>.json files")
	flag.Parse()

	if *parallel {
		bench.Workers = 0 // one worker per CPU
	} else {
		bench.Workers = 1
	}

	emit := func(name string, v any) {
		if *jsonDir == "" {
			return
		}
		if err := bench.WriteJSON(filepath.Join(*jsonDir, "BENCH_"+name+".json"), v); err != nil {
			fatal(err)
		}
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	any := false

	if run("table1") {
		any = true
		out, err := bench.RunTable1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if run("fig12") {
		any = true
		res, err := bench.RunFigure12(*procs, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Format())
		emit("fig12", res.JSON())
	}
	if run("fig13") {
		any = true
		res, err := bench.RunFigure13([]int{1, 2, 4, 8, 16, 32}, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Format())
		emit("fig13", res.JSON())
	}
	if run("ablation") {
		any = true
		rows, err := bench.RunDelayAblation(*procs, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatAblation(rows, *procs, *scale))
		emit("ablation", bench.AblationJSON(rows, *procs, *scale))
	}
	if run("cse") {
		any = true
		rows, err := bench.RunCSEStats(*procs, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatCSE(rows, *procs, *scale))
		emit("cse", bench.CSEJSON(rows, *procs, *scale))
	}
	if run("messages") {
		any = true
		rows, err := bench.RunMessageAblation(*procs, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatMessages(rows, *procs, *scale))
		emit("messages", bench.MessagesJSON(rows, *procs, *scale))
	}
	// Per-pass counters for every kernel; excluded from "all" to keep the
	// checked-in golden outputs focused on the paper's tables.
	if *exp == "passes" {
		any = true
		rows, err := bench.RunPassStats(*procs, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatPassStats(rows, *procs))
		emit("passes", rows)
	}
	// Machine-scaling tier (hundreds to thousands of simulated
	// processors); excluded from "all" to keep the default run quick.
	if *exp == "bigproc" {
		any = true
		res, err := bench.RunBigProc(bench.BigProcCounts, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Format())
		emit("bigproc", res.JSON())
	}
	// Compiler-side timing; excluded from "all" so the default output
	// stays machine-independent.
	if *exp == "analysis" {
		any = true
		rows, err := bench.RunAnalysisScaling(bench.AnalysisSizes, bench.AnalysisTiers())
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatAnalysis(rows))
		emit("analysis", bench.AnalysisJSON(rows))
	}
	// Service-stack latency; excluded from "all" so the default output
	// stays machine-independent.
	if *exp == "serve" {
		any = true
		s := serve.New(serve.Config{})
		hs := httptest.NewServer(s.Handler())
		rows, err := serve.RunLatencyExperiment(
			client.New(hs.URL, client.WithHTTPClient(hs.Client())), 8, 3, 5)
		hs.Close()
		s.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Println(serve.FormatLatency(rows))
		emit("serve", serve.LatencyJSON(rows))
	}
	if !any {
		fmt.Fprintf(os.Stderr, "pscbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pscbench:", err)
	os.Exit(1)
}
