package splitc_test

// End-to-end tests over the sample programs in testdata/: every program is
// compiled at every optimization level, executed on the weak-memory
// simulator (with and without jitter), compared against the sequentially
// consistent oracle, and spot-checked against hand-computed values.

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
)

const sampleProcs = 8

type sampleCheck func(t *testing.T, mem map[string][]ir.Value, prints []string)

var samples = map[string]sampleCheck{
	"reduction.ms": func(t *testing.T, mem map[string][]ir.Value, prints []string) {
		want := int64(0)
		for p := 1; p <= sampleProcs; p++ {
			want += int64(p * p)
		}
		if got := mem["Sum"][0].I; got != want {
			t.Errorf("Sum = %d, want %d", got, want)
		}
		found := false
		for _, line := range prints {
			if line == "[p0] sum 204" {
				found = true
			}
		}
		if !found {
			t.Errorf("missing sum print: %v", prints)
		}
	},
	"ring.ms": func(t *testing.T, mem map[string][]ir.Value, prints []string) {
		for p := 0; p < sampleProcs; p++ {
			if got := mem["Trace"][p].I; got != int64(p*10+1) {
				t.Errorf("Trace[%d] = %d, want %d", p, got, p*10+1)
			}
		}
	},
	"matvec.ms": func(t *testing.T, mem map[string][]ir.Value, prints []string) {
		var a [8][8]float64
		var x [8]float64
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				a[r][c] = float64((r + c) % 5)
			}
		}
		for c := 0; c < 8; c++ {
			x[c] = float64(c%3 + 1)
		}
		for r := 0; r < 8; r++ {
			want := 0.0
			for c := 0; c < 8; c++ {
				want += a[r][c] * x[c]
			}
			if got := mem["y"][r].Float(); got != want {
				t.Errorf("y[%d] = %g, want %g", r, got, want)
			}
		}
	},
	"oddeven.ms": func(t *testing.T, mem map[string][]ir.Value, prints []string) {
		vals := mem["A"]
		for i := 1; i < len(vals); i++ {
			if vals[i-1].I > vals[i].I {
				t.Errorf("not sorted at %d: %v", i, vals)
			}
		}
		// Same multiset as the init pattern (a permutation of (5i+3) mod 8).
		counts := map[int64]int{}
		for _, v := range vals {
			counts[v.I]++
		}
		for i := 0; i < 8; i++ {
			counts[int64((i*5+3)%8)]--
		}
		for k, c := range counts {
			if c != 0 {
				t.Errorf("value %d count off by %d", k, c)
			}
		}
	},
	"heat1d.ms": func(t *testing.T, mem map[string][]ir.Value, prints []string) {
		// Sequential oracle for 3 smoothing steps with reflective ends.
		u := make([]float64, 16)
		for i := range u {
			u[i] = float64(i % 4)
		}
		for step := 0; step < 3; step++ {
			v := make([]float64, 16)
			for i := range u {
				l, r := i-1, i+1
				if l < 0 {
					l = 0
				}
				if r > 15 {
					r = 15
				}
				v[i] = 0.25*u[l] + 0.5*u[i] + 0.25*u[r]
			}
			u = v
		}
		for i := range u {
			got := mem["U"][i].Float()
			d := got - u[i]
			if d < -1e-9 || d > 1e-9 {
				t.Errorf("U[%d] = %g, want %g", i, got, u[i])
			}
		}
	},
	"histogram.ms": func(t *testing.T, mem map[string][]ir.Value, prints []string) {
		want := make([]int64, 4)
		for p := 0; p < sampleProcs; p++ {
			for i := 0; i < 6; i++ {
				want[(p*7+i*3)%4]++
			}
		}
		for b := 0; b < 4; b++ {
			if got := mem["Bins"][b].I; got != want[b] {
				t.Errorf("Bins[%d] = %d, want %d", b, got, want[b])
			}
		}
	},
}

func TestSamplePrograms(t *testing.T) {
	levels := []splitc.Level{
		splitc.LevelBlocking, splitc.LevelBaseline, splitc.LevelPipelined, splitc.LevelOneWay,
	}
	for name, check := range samples {
		name, check := name, check
		t.Run(name, func(t *testing.T) {
			text, err := os.ReadFile(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			for _, lvl := range levels {
				prog, err := splitc.Compile(string(text), splitc.Options{
					Procs: sampleProcs, Level: lvl, CSE: true,
				})
				if err != nil {
					t.Fatalf("%s: compile: %v", lvl, err)
				}
				for _, jitter := range []float64{0, 2.5} {
					res, err := prog.Run(machine.CM5(sampleProcs), interp.RunOptions{Jitter: jitter, Seed: 7})
					if err != nil {
						t.Fatalf("%s jitter %g: %v", lvl, jitter, err)
					}
					check(t, res.Memory, res.Prints)
				}
				// The SC oracle agrees with the hand-computed values too.
				sc, err := prog.RunSC(3)
				if err != nil {
					t.Fatalf("%s: sc: %v", lvl, err)
				}
				check(t, sc.Memory, sc.Prints)
			}
		})
	}
}

func TestSamplesShowOptimizationValue(t *testing.T) {
	// The communication-heavy samples speed up from baseline to one-way.
	for _, name := range []string{"matvec.ms", "heat1d.ms", "oddeven.ms"} {
		text, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		times := map[splitc.Level]float64{}
		for _, lvl := range []splitc.Level{splitc.LevelBaseline, splitc.LevelOneWay} {
			prog, err := splitc.Compile(string(text), splitc.Options{Procs: sampleProcs, Level: lvl})
			if err != nil {
				t.Fatal(err)
			}
			res, err := prog.Run(machine.CM5(sampleProcs), interp.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			times[lvl] = res.Time
		}
		if times[splitc.LevelOneWay] > times[splitc.LevelBaseline] {
			t.Errorf("%s: one-way (%.0f) slower than baseline (%.0f)",
				name, times[splitc.LevelOneWay], times[splitc.LevelBaseline])
		}
		t.Logf("%-12s baseline %8.0f  oneway %8.0f (%.2fx)", name,
			times[splitc.LevelBaseline], times[splitc.LevelOneWay],
			times[splitc.LevelBaseline]/times[splitc.LevelOneWay])
	}
}
