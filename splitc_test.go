package splitc

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/machine"
)

const stencilSrc = `
shared float U[64];
shared float V[64];
func main() {
    local int nl = 64 / PROCS;
    local int base = MYPROC * nl;
    for (local int i = 0; i < 64 / PROCS; i = i + 1) {
        U[base + i] = itof(base + i);
    }
    barrier;
    for (local int i = 0; i < 64 / PROCS; i = i + 1) {
        local int g = base + i;
        V[g] = U[(g + 63) % 64] + U[(g + 1) % 64];
    }
    barrier;
}
`

func TestCompileLevels(t *testing.T) {
	for _, lvl := range []Level{LevelBlocking, LevelBaseline, LevelPipelined, LevelOneWay} {
		p, err := Compile(stencilSrc, Options{Procs: 8, Level: lvl})
		if err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		if p.Target == nil || p.Analysis == nil {
			t.Fatalf("%s: missing outputs", lvl)
		}
	}
}

func TestLevelsAgreeOnResult(t *testing.T) {
	var want string
	for _, lvl := range []Level{LevelBlocking, LevelBaseline, LevelPipelined, LevelOneWay} {
		p := MustCompile(stencilSrc, Options{Procs: 8, Level: lvl, CSE: lvl == LevelOneWay})
		res, err := p.Run(machine.CM5(8), interp.RunOptions{Jitter: 1.5, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		got := interp.FormatSnapshot(res.Memory)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("%s produced different memory", lvl)
		}
	}
}

func TestOptimizationLaddersTime(t *testing.T) {
	times := map[Level]float64{}
	for _, lvl := range []Level{LevelBaseline, LevelPipelined, LevelOneWay} {
		p := MustCompile(stencilSrc, Options{Procs: 8, Level: lvl})
		res, err := p.Run(machine.CM5(8), interp.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		times[lvl] = res.Time
	}
	if !(times[LevelPipelined] < times[LevelBaseline]) {
		t.Errorf("pipelined (%.0f) should beat baseline (%.0f)",
			times[LevelPipelined], times[LevelBaseline])
	}
	if times[LevelOneWay] > times[LevelPipelined] {
		t.Errorf("one-way (%.0f) should not lose to pipelined (%.0f)",
			times[LevelOneWay], times[LevelPipelined])
	}
	t.Logf("baseline %.0f, pipelined %.0f, oneway %.0f",
		times[LevelBaseline], times[LevelPipelined], times[LevelOneWay])
}

func TestWeakMatchesSCOracle(t *testing.T) {
	p := MustCompile(stencilSrc, Options{Procs: 8, Level: LevelOneWay, CSE: true})
	sc, err := p.RunSC(11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(machine.T3D(8), interp.RunOptions{Jitter: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if interp.FormatSnapshot(res.Memory) != interp.FormatSnapshot(sc.Memory) {
		t.Error("weak execution diverged from the SC oracle")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("not a program", Options{Procs: 2}); err == nil {
		t.Error("parse error expected")
	}
	if _, err := Compile("func main() { x = 1; }", Options{Procs: 2}); err == nil {
		t.Error("check error expected")
	}
	if _, err := Compile("func main() { }", Options{}); err == nil {
		t.Error("missing procs should fail")
	}
	if _, err := Compile("func main() { }", Options{Procs: 2, Level: Level(99)}); err == nil {
		t.Error("bad level should fail")
	}
}

func TestRunProcsMismatch(t *testing.T) {
	p := MustCompile("func main() { }", Options{Procs: 4})
	if _, err := p.Run(machine.CM5(8), interp.RunOptions{}); err == nil {
		t.Error("mismatched machine size should fail")
	}
}

func TestIntrospection(t *testing.T) {
	p := MustCompile(stencilSrc, Options{Procs: 8, Level: LevelOneWay})
	if !strings.Contains(p.DelaySummary(), "final delays") {
		t.Error("DelaySummary missing content")
	}
	if !strings.Contains(p.TargetText(), "get_ctr") && !strings.Contains(p.TargetText(), "store") {
		t.Error("TargetText missing split-phase ops")
	}
	if !strings.Contains(p.IRText(), "barrier") {
		t.Error("IRText missing barrier")
	}
}

func TestLevelString(t *testing.T) {
	for _, lvl := range []Level{LevelBlocking, LevelBaseline, LevelPipelined, LevelOneWay, LevelUnsafe} {
		if strings.HasPrefix(lvl.String(), "Level(") {
			t.Errorf("level %d has no name", lvl)
		}
	}
	if Level(42).String() != "Level(42)" {
		t.Error("unknown level should render numerically")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic")
		}
	}()
	MustCompile("bad", Options{Procs: 1})
}

func TestUnsafeLevelCompiles(t *testing.T) {
	p := MustCompile(stencilSrc, Options{Procs: 8, Level: LevelUnsafe})
	// Deterministic run (no jitter) still computes the right values here.
	res, err := p.Run(machine.Ideal(8), interp.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < 0 {
		t.Error("nonsense time")
	}
}
