package splitc_test

import (
	"fmt"

	splitc "repro"
	"repro/internal/interp"
	"repro/internal/machine"
)

// Example is the package godoc's quick start, compiled and checked: build a
// MiniSplit program at the highest optimization level and run it on a
// simulated CM-5.
func Example() {
	src := `
shared int Sum;
lock m;
func main() {
    local int mine = MYPROC + 1;
    lock(m);
    Sum = Sum + mine;
    unlock(m);
    barrier;
    if (MYPROC == 0) {
        print("sum", Sum);
    }
}
`
	prog, err := splitc.Compile(src, splitc.Options{Procs: 8, Level: splitc.LevelOneWay})
	if err != nil {
		panic(err)
	}
	res, err := prog.Run(machine.CM5(8), interp.RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Prints[0])
	// Output: [p0] sum 36
}
