// Package splitc is a compiler and simulator for MiniSplit, an explicitly
// parallel SPMD language with a global address space, reproducing the
// analyses and optimizations of Krishnamurthy & Yelick, "Optimizing
// Parallel Programs with Explicit Synchronization" (PLDI 1995).
//
// The pipeline is: parse -> type check -> build IR (inlining, explicit
// shared accesses) -> conflict set -> cycle detection (Shasha & Snir delay
// sets) -> synchronization analysis (post/wait, barriers, locks) -> split
// phase code generation (message pipelining, one-way communication,
// communication elimination) -> execution on a simulated distributed-memory
// machine (CM-5, T3D, DASH cost models) under genuinely weak memory
// ordering.
//
// Quick start:
//
//	prog, err := splitc.Compile(src, splitc.Options{Procs: 8, Level: splitc.LevelOneWay})
//	res, err := prog.Run(machine.CM5(8), interp.RunOptions{})
//	fmt.Println(res.Time, res.Prints)
package splitc

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/delay"
	"repro/internal/diag"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pass"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/syncanal"
	"repro/internal/target"
)

// Level selects the optimization level, mirroring the three bars of the
// paper's Figure 12 plus two reference points.
type Level int

// Optimization levels.
const (
	// LevelBlocking pins every sync_ctr next to its initiation: fully
	// blocking shared accesses (a reference point below the paper's base).
	LevelBlocking Level = iota
	// LevelBaseline applies Shasha & Snir cycle detection only — the
	// paper's "unoptimized" compiler, against which Figure 12 normalizes.
	LevelBaseline
	// LevelPipelined adds the synchronization analysis of section 5 and
	// message pipelining (split-phase accesses, sync motion).
	LevelPipelined
	// LevelOneWay further converts barrier-synchronized puts to one-way
	// stores (Figure 12's third bar).
	LevelOneWay
	// LevelUnsafe compiles with an empty delay set (no SC enforcement).
	// It exists to demonstrate violations; never use it for real runs.
	LevelUnsafe
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelBlocking:
		return "blocking"
	case LevelBaseline:
		return "baseline"
	case LevelPipelined:
		return "pipelined"
	case LevelOneWay:
		return "oneway"
	case LevelUnsafe:
		return "unsafe"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Levels lists every optimization level in ascending order.
func Levels() []Level {
	return []Level{LevelBlocking, LevelBaseline, LevelPipelined, LevelOneWay, LevelUnsafe}
}

// ParseLevel resolves a level name ("blocking", "baseline", "pipelined",
// "oneway", "unsafe") as printed by Level.String. All the command-line
// drivers share this parser.
func ParseLevel(name string) (Level, error) {
	for _, l := range Levels() {
		if name == l.String() {
			return l, nil
		}
	}
	return 0, fmt.Errorf("unknown level %q", name)
}

// ParseLevels resolves a comma-separated level list. The empty string and
// "all" mean nil, which drivers interpret as their own default grid.
func ParseLevels(spec string) ([]Level, error) {
	if spec == "" || spec == "all" {
		return nil, nil
	}
	var out []Level
	for _, name := range strings.Split(spec, ",") {
		l, err := ParseLevel(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

// Options configures compilation.
type Options struct {
	// Procs fixes the machine size at compile time (required; the
	// analyses use it to disambiguate owner-computes subscripts, and runs
	// must use the same size).
	Procs int
	// Level is the optimization level.
	Level Level
	// CSE enables the communication-eliminating transformations
	// (section 7) on top of the level.
	CSE bool
	// Exact uses the exponential simple-path search in cycle detection.
	Exact bool
	// NoHoist disables initiation back-motion at the pipelined levels
	// (an ablation knob; hoisting is part of the paper's pipelining).
	NoHoist bool
	// Weaken lists delay pairs the code generator deliberately ignores,
	// seeding sequential-consistency violations for the dynamic verifier's
	// negative tests (internal/scverify). Leave empty for real compiles.
	Weaken []delay.Pair
}

// Program is a compiled MiniSplit program.
type Program struct {
	Source   string
	Opts     Options
	AST      *source.Program
	Info     *sem.Info
	Fn       *ir.Fn
	Analysis *syncanal.Result
	Target   *target.Prog
	Codegen  codegen.Stats
	// Passes records per-pass instrumentation (wall time, counters, and —
	// when the driver asked for it — allocations) for the pipeline run
	// that produced the program.
	Passes []pass.Stat
	// Diags holds the structured diagnostics the pipeline reported,
	// including warnings from compiles that succeeded.
	Diags []diag.Diagnostic
}

// PipelineConfig translates the public options into the pass layer's
// Config. It is the single place the optimization levels are defined: a
// level is nothing more than a preset pass configuration.
func PipelineConfig(opts Options) (pass.Config, error) {
	cfg := pass.Config{
		Procs:  opts.Procs,
		Exact:  opts.Exact,
		CSE:    opts.CSE,
		Weaken: opts.Weaken,
	}
	switch opts.Level {
	case LevelBlocking:
		cfg.Delays = pass.DelayFinal
	case LevelBaseline:
		cfg.Delays = pass.DelayBaseline
		cfg.Motion = true
	case LevelPipelined:
		cfg.Delays = pass.DelayFinal
		cfg.Motion = true
		cfg.Hoist = !opts.NoHoist
	case LevelOneWay:
		cfg.Delays = pass.DelayFinal
		cfg.Motion = true
		cfg.OneWay = true
		cfg.Hoist = !opts.NoHoist
	case LevelUnsafe:
		cfg.Delays = pass.DelayNone
		cfg.Motion = true
		cfg.OneWay = true
	default:
		return cfg, fmt.Errorf("splitc: unknown level %d", opts.Level)
	}
	return cfg, nil
}

// PassNames returns the names of the passes Compile would run for opts, in
// execution order.
func PassNames(opts Options) ([]string, error) {
	cfg, err := PipelineConfig(opts)
	if err != nil {
		return nil, err
	}
	return pass.PlanNames(cfg), nil
}

// Compile parses, checks, analyzes, and compiles src for a machine of
// opts.Procs processors. It runs the canonical pass pipeline for the
// selected level; drivers that need instrumentation hooks use
// CompilePipeline directly.
func Compile(src string, opts Options) (*Program, error) {
	return CompilePipeline(src, opts, nil)
}

// CompileContext is Compile under a cancellation/deadline context. The
// pipeline checks ctx at every pass boundary, so a timed-out or canceled
// compile aborts within one pass of the signal; callers distinguish the
// abort from an ordinary compile error by inspecting ctx.Err(). This is
// the entry point the serving daemon (internal/serve) uses to bound
// per-request work.
func CompileContext(ctx context.Context, src string, opts Options) (*Program, error) {
	return CompilePipelineContext(ctx, src, opts, nil)
}

// CompilePipeline compiles src through pl, a pipeline the caller may have
// customized (explicit pass list, per-pass observer, allocation
// measurement). A nil pl — or one with no explicit pass list — runs the
// canonical pipeline for opts. On error the returned Program carries the
// passes that did run and their diagnostics alongside the error.
func CompilePipeline(src string, opts Options, pl *pass.Pipeline) (*Program, error) {
	return CompilePipelineContext(context.Background(), src, opts, pl)
}

// CompilePipelineContext is CompilePipeline under a cancellation/deadline
// context (see CompileContext).
func CompilePipelineContext(ctx context.Context, src string, opts Options, pl *pass.Pipeline) (*Program, error) {
	if opts.Procs <= 0 {
		return nil, fmt.Errorf("splitc: Options.Procs must be positive")
	}
	cfg, err := PipelineConfig(opts)
	if err != nil {
		return nil, err
	}
	if pl == nil {
		pl = &pass.Pipeline{}
	}
	if pl.Passes == nil {
		pl.Passes = pass.Plan(cfg)
	}
	pctx := pass.NewContext(src, cfg)
	if ctx != nil && ctx != context.Background() {
		pctx.Ctx = ctx
	}
	stats, err := pl.Run(pctx)
	prog := &Program{
		Source:   src,
		Opts:     opts,
		AST:      pctx.AST,
		Info:     pctx.Info,
		Fn:       pctx.Fn,
		Analysis: pctx.Analysis,
		Target:   pctx.Prog(),
		Codegen:  pctx.CodegenStats(),
		Passes:   stats,
		Diags:    pctx.Diags.All(),
	}
	if err != nil {
		return prog, err
	}
	return prog, nil
}

// MustCompile is Compile for tests and examples; it panics on error.
func MustCompile(src string, opts Options) *Program {
	p, err := Compile(src, opts)
	if err != nil {
		panic(err)
	}
	return p
}

// Run executes the compiled program on the simulated machine. The machine
// size must match the compile-time Procs.
func (p *Program) Run(cfg machine.Config, ropts interp.RunOptions) (*interp.Result, error) {
	if cfg.Procs != p.Opts.Procs {
		return nil, fmt.Errorf("splitc: program compiled for %d procs, machine has %d",
			p.Opts.Procs, cfg.Procs)
	}
	return interp.Run(p.Target, cfg, ropts)
}

// RunSC executes the program's IR under a sequentially consistent random
// interleaving (the reference semantics).
func (p *Program) RunSC(seed int64) (*interp.SCResult, error) {
	return interp.RunSC(p.Fn, interp.SCOptions{Procs: p.Opts.Procs, Seed: seed})
}

// DelaySummary renders the analysis results (delay-set sizes etc.).
func (p *Program) DelaySummary() string { return p.Analysis.Summary() }

// TargetText renders the generated split-phase code.
func (p *Program) TargetText() string { return p.Target.String() }

// IRText renders the mid-level IR.
func (p *Program) IRText() string { return p.Fn.String() }
