package splitc_test

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. Benchmarks print their tables once
// and report the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. EXPERIMENTS.md records a full-size
// (64-processor) run produced with cmd/pscbench.

import (
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/machine"
)

// benchProcs keeps `go test -bench` runs quick; cmd/pscbench runs the
// paper-size 64-processor configuration.
const benchProcs = 16

var printOnce sync.Map

func logOnce(b *testing.B, key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Logf("\n%s", text)
	}
}

// BenchmarkTable1 regenerates Table 1 (machine access latencies).
func BenchmarkTable1(b *testing.B) {
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = bench.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
	}
	logOnce(b, "table1", out)
}

// BenchmarkFigure12 regenerates Figure 12 (normalized execution times of
// the five kernels at the three optimization levels).
func BenchmarkFigure12(b *testing.B) {
	var res *bench.Fig12Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.RunFigure12(benchProcs, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	logOnce(b, "fig12", res.Format())
	var gain float64
	for _, row := range res.Rows {
		gain += 1 - row.Cycles[splitc.LevelOneWay]/row.Cycles[splitc.LevelBaseline]
	}
	b.ReportMetric(gain/float64(len(res.Rows))*100, "mean-gain-%")
}

// BenchmarkFigure13 regenerates Figure 13 (Epithelial speedup curves).
func BenchmarkFigure13(b *testing.B) {
	procs := []int{1, 2, 4, 8, 16}
	var res *bench.Fig13Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.RunFigure13(procs, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	logOnce(b, "fig13", res.Format())
	last := res.Points[len(res.Points)-1]
	first := res.Points[0]
	b.ReportMetric(first.Cycles[splitc.LevelOneWay]/last.Cycles[splitc.LevelOneWay], "oneway-speedup")
	b.ReportMetric(first.Cycles[splitc.LevelBaseline]/last.Cycles[splitc.LevelBaseline], "base-speedup")
}

// BenchmarkAblationDelaySets regenerates the delay-set ablation table.
func BenchmarkAblationDelaySets(b *testing.B) {
	var rows []bench.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.RunDelayAblation(benchProcs, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	logOnce(b, "ablation", bench.FormatAblation(rows, benchProcs, 1))
	var base, refined float64
	for _, r := range rows {
		base += float64(r.Baseline)
		refined += float64(r.Refined)
	}
	b.ReportMetric((1-refined/base)*100, "delay-reduction-%")
}

// BenchmarkAblationMessages regenerates the message-count table
// (acknowledgement traffic eliminated by one-way conversion).
func BenchmarkAblationMessages(b *testing.B) {
	var rows []bench.MessageRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.RunMessageAblation(benchProcs, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	logOnce(b, "messages", bench.FormatMessages(rows, benchProcs, 1))
}

// benchKernel runs one kernel at one level as a sub-benchmark.
func benchKernel(b *testing.B, name string, lvl splitc.Level) {
	k := apps.ByName(name)
	if k == nil {
		b.Fatalf("unknown kernel %s", name)
	}
	src := k.Source(benchProcs, 1)
	prog, err := splitc.Compile(src, splitc.Options{Procs: benchProcs, Level: lvl})
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.CM5(benchProcs)
	var res *interp.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = prog.Run(cfg, interp.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := k.Check(res, benchProcs, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Time, "sim-cycles")
	b.ReportMetric(float64(res.Messages), "messages")
}

// Per-kernel, per-level benchmarks: the rows and bars of Figure 12.
func BenchmarkKernels(b *testing.B) {
	for _, k := range apps.All() {
		for _, lvl := range []splitc.Level{splitc.LevelBaseline, splitc.LevelPipelined, splitc.LevelOneWay} {
			b.Run(fmt.Sprintf("%s/%s", k.Name, lvl), func(b *testing.B) {
				benchKernel(b, k.Name, lvl)
			})
		}
	}
}

// BenchmarkCompile measures compiler throughput on the largest kernel.
func BenchmarkCompile(b *testing.B) {
	src := apps.ByName("Health").Source(benchProcs, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splitc.Compile(src, splitc.Options{Procs: benchProcs, Level: splitc.LevelOneWay, CSE: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalysisExact measures the exponential simple-path search
// against the polynomial default (the DESIGN.md search-strategy ablation).
func BenchmarkAnalysisExact(b *testing.B) {
	src := apps.ByName("Ocean").Source(benchProcs, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splitc.Compile(src, splitc.Options{Procs: benchProcs, Level: splitc.LevelPipelined, Exact: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPassPipeline measures the instrumented pass pipeline end to end
// on every kernel at the highest optimization level: the cost of compiling
// through pass.Plan with per-pass wall-clock instrumentation (allocation
// attribution stays off, as in Compile). Gated by cmd/benchgate against
// BENCH_analysis.json.
func BenchmarkPassPipeline(b *testing.B) {
	for _, k := range apps.All() {
		src := k.Source(benchProcs, 1)
		b.Run(k.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				prog, err := splitc.Compile(src, splitc.Options{Procs: benchProcs, Level: splitc.LevelOneWay, CSE: true})
				if err != nil {
					b.Fatal(err)
				}
				if len(prog.Passes) == 0 {
					b.Fatal("no pass stats recorded")
				}
			}
		})
	}
}
