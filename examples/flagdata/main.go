// Flagdata demonstrates Figure 1 of the paper: the flag/data idiom breaks
// on a weakly ordered machine unless the compiler enforces the delay set
// that cycle detection computes.
//
// The program is compiled twice: once with an empty delay set (what a
// sequential compiler oblivious to other processors would allow) and once
// with the real analysis. Under randomized network latencies the first
// version sometimes lets the consumer read the flag before the data — a
// sequential-consistency violation — while the second never does.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/interp"
	"repro/internal/machine"
)

const src = `
// Figure 1 of Krishnamurthy & Yelick (PLDI 1995). Both scalars live on
// the consumer's memory module, as they would on a CM-5 where the
// consumer polls its own memory.
shared int Data on 1 = 0;
shared int Flag on 1 = 0;

func main() {
    local int v = 0;
    if (MYPROC == 0) {
        Data = 1;
        Flag = 1;
    } else {
        while (v == 0) {
            v = Flag;
        }
        v = Data;
        print("consumer read Data =", v);
    }
}
`

func main() {
	const (
		procs = 2
		runs  = 300
	)
	for _, lvl := range []splitc.Level{splitc.LevelUnsafe, splitc.LevelPipelined} {
		prog, err := splitc.Compile(src, splitc.Options{Procs: procs, Level: lvl})
		if err != nil {
			log.Fatal(err)
		}
		violations := 0
		for seed := int64(0); seed < runs; seed++ {
			res, err := prog.Run(machine.CM5(procs), interp.RunOptions{Jitter: 8, Seed: seed})
			if err != nil {
				log.Fatal(err)
			}
			for _, line := range res.Prints {
				if line == "[p1] consumer read Data = 0" {
					violations++
				}
			}
		}
		fmt.Printf("level %-9s: %3d/%d runs violated sequential consistency\n", lvl, violations, runs)
	}
	fmt.Println("\nThe delay set the analysis computes for this program:")
	prog, _ := splitc.Compile(src, splitc.Options{Procs: procs, Level: splitc.LevelPipelined})
	fmt.Print(prog.Analysis.D)
}
