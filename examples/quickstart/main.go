// Quickstart: compile a small explicitly parallel MiniSplit program, look
// at the analysis and the generated split-phase code, and run it on a
// simulated CM-5.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/interp"
	"repro/internal/machine"
)

const src = `
// Every processor fills its slice of A, then everyone reads a neighbor's
// value after the barrier.
shared int A[32];
shared int Sum on 0;
lock m;

func main() {
    local int nl = 32 / PROCS;
    for (local int i = 0; i < 32 / PROCS; i = i + 1) {
        A[MYPROC * (32 / PROCS) + i] = MYPROC * 100 + i;
    }
    barrier;
    local int neighbor = A[((MYPROC + 1) % PROCS) * (32 / PROCS)];
    lock(m);
    Sum = Sum + neighbor;
    unlock(m);
    print("proc", MYPROC, "saw", neighbor);
}
`

func main() {
	const procs = 8
	prog, err := splitc.Compile(src, splitc.Options{
		Procs: procs,
		Level: splitc.LevelOneWay, // full optimization: pipelining + one-way
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- analysis summary ---")
	fmt.Print(prog.DelaySummary())

	fmt.Println("\n--- generated split-phase code ---")
	fmt.Print(prog.TargetText())

	res, err := prog.Run(machine.CM5(procs), interp.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- program output ---")
	for _, line := range res.Prints {
		fmt.Println(line)
	}
	fmt.Printf("\nexecution: %.0f cycles, %d network messages\n", res.Time, res.Messages)
	fmt.Println("final Sum:", res.Memory["Sum"][0])

	// The sequentially consistent oracle agrees.
	oracle, err := prog.RunSC(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SC oracle Sum:", oracle.Memory["Sum"][0])
}
