// Stencil compares the three optimization levels of the paper on an
// Ocean-style ghost-exchange stencil, across the three machine models of
// Table 1. The shape matches the paper: the gains are largest on the
// CM-5, whose remote/local latency ratio is worst.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/apps"
	"repro/internal/interp"
	"repro/internal/machine"
)

func main() {
	const procs = 16
	ocean := apps.Ocean()
	src := ocean.Source(procs, 2)

	machines := []machine.Config{
		machine.CM5(procs), machine.T3D(procs), machine.DASH(procs),
	}
	levels := []splitc.Level{splitc.LevelBaseline, splitc.LevelPipelined, splitc.LevelOneWay}

	fmt.Printf("%-8s %12s %12s %12s %10s\n", "machine", "unoptimized", "pipelined", "one-way", "gain")
	for _, cfg := range machines {
		times := map[splitc.Level]float64{}
		for _, lvl := range levels {
			prog, err := splitc.Compile(src, splitc.Options{Procs: procs, Level: lvl})
			if err != nil {
				log.Fatal(err)
			}
			res, err := prog.Run(cfg, interp.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if err := ocean.Check(res, procs, 2); err != nil {
				log.Fatalf("%s/%s: wrong answer: %v", cfg.Name, lvl, err)
			}
			times[lvl] = res.Time
		}
		base := times[splitc.LevelBaseline]
		fmt.Printf("%-8s %12.0f %12.0f %12.0f %9.1f%%\n",
			cfg.Name, base, times[splitc.LevelPipelined], times[splitc.LevelOneWay],
			(1-times[splitc.LevelOneWay]/base)*100)
	}
	fmt.Println("\n(all runs validated against the sequential oracle)")
}
