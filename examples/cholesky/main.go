// Cholesky runs the post/wait producer-consumer kernel of the paper's
// evaluation and shows what the synchronization analysis buys: without
// post/wait analysis the consumers' remote reads of each published column
// serialize; with it they pipeline.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/apps"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/syncanal"
)

func main() {
	const (
		procs = 16
		scale = 2 // two columns per processor: a 32 x 32 matrix
	)
	chol := apps.Cholesky()
	src := chol.Source(procs, scale)

	for _, lvl := range []splitc.Level{splitc.LevelBaseline, splitc.LevelPipelined} {
		prog, err := splitc.Compile(src, splitc.Options{Procs: procs, Level: lvl})
		if err != nil {
			log.Fatal(err)
		}
		res, err := prog.Run(machine.CM5(procs), interp.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if err := chol.Check(res, procs, scale); err != nil {
			log.Fatalf("%s: wrong factor: %v", lvl, err)
		}
		fmt.Printf("%-10s %10.0f cycles, %6d messages\n", lvl, res.Time, res.Messages)
	}

	// The ablation: turn off only the post/wait analysis.
	prog, _ := splitc.Compile(src, splitc.Options{Procs: procs, Level: splitc.LevelPipelined})
	with := prog.Analysis.D.Size()
	without := syncanal.Analyze(prog.Fn, syncanal.Options{NoPostWait: true}).D.Size()
	fmt.Printf("\ndelay set: %d edges with post/wait analysis, %d without\n", with, without)
	fmt.Println("(the producer-consumer reads pipeline only because the post->wait")
	fmt.Println(" precedence orients the conflict edges between writers and readers)")
}
